//! Substitute-certificate minting.
//!
//! A [`SubstituteFactory`] is one product's certificate machinery: its
//! injected root CA and the leaf substitutes it mints per probed host —
//! with all the behaviours the paper catalogued (issuer forgery, key-size
//! downgrades, MD5 signatures, subject mutations, shared leaf keys).
//! Substitutes are cached per host, as real proxies cache them per site;
//! the cache is a [`SubstituteCache`] that a [`crate::PopulationModel`]
//! shares across every factory *and every worker thread* of a study run.
//!
//! Minting is a pure function of the cache key (see [`crate::cache`]'s
//! determinism contract): serial numbers come from a DRBG seeded by
//! `(product, host, variant)`, leaf keys from the stable [`keys`] seeds —
//! so a chain's bytes never depend on mint order or thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use tlsfoe_crypto::drbg::{Drbg, RngCore64};
use tlsfoe_crypto::RsaKeyPair;
use tlsfoe_netsim::Ipv4;
use tlsfoe_x509::ext::Extension;
use tlsfoe_x509::name::{DistinguishedName, NameBuilder};
use tlsfoe_x509::time::Time;
use tlsfoe_x509::{Certificate, CertificateBuilder};

use crate::cache::{SubstituteCache, SubstituteKey};
use crate::keys;
use crate::model::StudyEra;
use crate::products::{ProductId, ProductSpec, SubjectStyle};

/// Number of leaf keys in a non-shared product's pool. Real products
/// reuse a few keys across installs; the IopFail malware's pool size is
/// forced to 1 (its defining fingerprint).
const LEAF_POOL: u16 = 3;

/// Leaf-pool size for a product spec (how many [`keys::leaf_seed`] slots
/// it can touch) — shared with [`keys::product_key_specs`] so prewarm
/// covers exactly the keys a factory can lazily generate.
pub(crate) fn leaf_pool_size(spec: &ProductSpec) -> u16 {
    if spec.shared_leaf_key {
        1
    } else {
        LEAF_POOL
    }
}

/// One product's certificate mint.
///
/// Minting cost is dominated by the root key's RSA signature over each
/// substitute's TBS bytes; the cached [`keys::keypair`] root carries
/// precomputed CRT/Montgomery material, so a cache-miss mint is two
/// half-size exponentiations rather than the schoolbook full-size one
/// the seed implementation paid.
pub struct SubstituteFactory {
    /// The product this factory belongs to.
    pub product: ProductId,
    spec: ProductSpec,
    era: StudyEra,
    root_key: Arc<RsaKeyPair>,
    root_cert: Certificate,
    leaf_pool: u16,
    /// Leaf-key pool, resolved lazily and exactly once per slot (the
    /// shared key cache hands out `Arc`s, so a slot is one refcount).
    leaf_keys: Vec<OnceLock<Arc<RsaKeyPair>>>,
    /// Minted chains — usually the owning model's shared cache.
    cache: Arc<SubstituteCache>,
    /// Chains actually minted (cache misses) through this factory.
    minted: AtomicUsize,
}

impl SubstituteFactory {
    /// Build a standalone factory with a private cache (tests, one-off
    /// labs). Study runs use [`SubstituteFactory::with_cache`] through
    /// [`crate::PopulationModel::factory`] instead, so chains are shared
    /// across products and threads.
    pub fn new(product: ProductId, spec: ProductSpec) -> SubstituteFactory {
        Self::with_cache(product, spec, StudyEra::Study1, Arc::new(SubstituteCache::new()))
    }

    /// Build the factory (generates/loads the product's key material),
    /// minting into `cache` under `(product, era, host, …)` keys.
    pub fn with_cache(
        product: ProductId,
        spec: ProductSpec,
        era: StudyEra,
        cache: Arc<SubstituteCache>,
    ) -> SubstituteFactory {
        let root_key = keys::keypair(keys::root_seed(product.0), 2048);
        let root_name = issuer_name(&spec, None);
        let root_cert = CertificateBuilder::new()
            .serial_u64(product.0 as u64 + 1)
            .subject(root_name)
            .validity(Time::from_ymd(2012, 1, 1), Time::from_ymd(2022, 1, 1))
            .ca(None)
            .self_sign(&root_key)
            .expect("root self-sign");
        let leaf_pool = leaf_pool_size(&spec);
        SubstituteFactory {
            product,
            spec,
            era,
            root_key,
            root_cert,
            leaf_pool,
            leaf_keys: (0..leaf_pool).map(|_| OnceLock::new()).collect(),
            cache,
            minted: AtomicUsize::new(0),
        }
    }

    /// The product's behaviour spec.
    pub fn spec(&self) -> &ProductSpec {
        &self.spec
    }

    /// The root certificate this product injects into victim root stores
    /// (Figure 2c's "New Injected Root").
    pub fn root_cert(&self) -> &Certificate {
        &self.root_cert
    }

    /// The root's public key (the key that actually signs substitutes —
    /// even for issuer-forging products).
    pub fn root_public(&self) -> &tlsfoe_crypto::RsaPublicKey {
        &self.root_key.public
    }

    /// Mint (or fetch from cache) the substitute chain for `host`.
    ///
    /// `upstream_leaf` — the genuine certificate the proxy fetched from
    /// the real server; used by issuer-copying products (the forged
    /// "DigiCert Inc" issuers copied our original's issuer, §5.2).
    /// `dst` — destination IP, used by wildcard-IP-subject products.
    pub fn substitute_chain(
        &self,
        host: &str,
        dst: Ipv4,
        upstream_leaf: Option<&Certificate>,
    ) -> Arc<Vec<Certificate>> {
        self.substitute_entry(host, dst, upstream_leaf).chain
    }

    /// Like [`SubstituteFactory::substitute_chain`], but returns the full
    /// cache entry — chain plus the shared `ServerConfig` whose encoded
    /// hello flight the proxy serves to every intercepted connection.
    pub fn substitute_entry(
        &self,
        host: &str,
        dst: Ipv4,
        upstream_leaf: Option<&Certificate>,
    ) -> crate::cache::SubstituteEntry {
        let variant = self.mint_variant(dst, upstream_leaf);
        let key =
            SubstituteKey { product: self.product, era: self.era, host: host.to_string(), variant };
        self.cache.get_or_mint(key, || {
            self.minted.fetch_add(1, Ordering::Relaxed);
            self.mint(host, dst, upstream_leaf, variant)
        })
    }

    /// Number of distinct substitute chains minted (not merely served)
    /// through this factory.
    pub fn minted(&self) -> usize {
        self.minted.load(Ordering::Relaxed)
    }

    /// Hash of the mint inputs beyond the hostname, for the cache key.
    ///
    /// Most products mint from the host alone (variant 0). Wildcard-IP
    /// subjects depend on the destination /24; issuer-copying products
    /// depend on the upstream issuer DN. Folding those into the key keeps
    /// the cached chain a pure function of its key — the determinism
    /// contract of [`crate::cache`].
    fn mint_variant(&self, dst: Ipv4, upstream_leaf: Option<&Certificate>) -> u64 {
        let mut v = 0u64;
        if self.spec.subject_style == SubjectStyle::WildcardIpSubnet {
            v ^= fnv(&format!("{}.{}.{}", dst.0[0], dst.0[1], dst.0[2]));
        }
        if self.spec.copy_issuer {
            if let Some(up) = upstream_leaf {
                v ^= fnv(&up.tbs.issuer.to_string()).rotate_left(1);
            }
        }
        v
    }

    fn mint(
        &self,
        host: &str,
        dst: Ipv4,
        upstream_leaf: Option<&Certificate>,
        variant: u64,
    ) -> Vec<Certificate> {
        let issuer = issuer_name(&self.spec, upstream_leaf);
        let (subject, san): (DistinguishedName, Vec<String>) = match self.spec.subject_style {
            SubjectStyle::Exact => {
                (NameBuilder::new().common_name(host).build(), vec![host.to_string()])
            }
            SubjectStyle::WildcardIpSubnet => {
                // Wildcard over the destination's /24 — covers the subnet
                // only, not the hostname (the §5.2 mismatch).
                let pattern = format!("*.{}.{}.{}", dst.0[0], dst.0[1], dst.0[2]);
                (NameBuilder::new().common_name(&pattern).build(), vec![pattern])
            }
            SubjectStyle::WrongDomain(domain) => {
                (NameBuilder::new().common_name(domain).build(), vec![domain.to_string()])
            }
            SubjectStyle::Tweaked => (
                NameBuilder::new()
                    .organizational_unit("content-filtered")
                    .common_name(host)
                    .build(),
                vec![host.to_string()],
            ),
        };

        // Leaf key: pooled by host hash (stable), or the single shared
        // key. Generated lazily — most sessions touch one key per product.
        let key_idx = (fnv(host) % self.leaf_pool as u64) as u16;
        let leaf_key = self.leaf_keys[key_idx as usize]
            .get_or_init(|| {
                keys::keypair(keys::leaf_seed(self.product.0, key_idx), self.spec.key_bits)
            })
            .clone();

        // Serial derived from a DRBG over (product, host, variant) —
        // independent of mint order, so shared-cache minting is
        // thread-schedule-proof, and distinct mint variants of one host
        // (different destination /24, different upstream issuer) get
        // distinct serials under the shared root, as RFC 5280 requires.
        let serial =
            Drbg::new(keys::root_seed(self.product.0) ^ fnv(host) ^ variant.rotate_left(17))
                .fork("substitute-serial")
                .next_u64()
                | 1; // keep it nonzero
        let mut builder = CertificateBuilder::new()
            .serial_u64(serial)
            .signature_alg(self.spec.sig_alg)
            .issuer(issuer)
            .subject(subject)
            .validity(Time::from_ymd(2013, 6, 1), Time::from_ymd(2016, 6, 1))
            .extension(Extension::BasicConstraints { ca: false, path_len: None });
        let san_refs: Vec<&str> = san.iter().map(|s| s.as_str()).collect();
        builder = builder.san_dns(&san_refs);
        let leaf = builder.sign(&leaf_key.public, &self.root_key).expect("substitute sign");
        vec![leaf, self.root_cert.clone()]
    }
}

/// The issuer DN a product writes into substitutes (and its root subject).
fn issuer_name(spec: &ProductSpec, upstream_leaf: Option<&Certificate>) -> DistinguishedName {
    if spec.copy_issuer {
        if let Some(up) = upstream_leaf {
            return up.tbs.issuer.clone();
        }
    }
    let mut b = NameBuilder::new();
    if let Some(org) = spec.issuer_org {
        b = b.organization(org);
    }
    if let Some(cn) = spec.issuer_cn {
        b = b.common_name(cn);
    }
    b.build()
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::products::{catalog, SubjectStyle};
    use tlsfoe_x509::cert::SignatureAlgorithm;
    use tlsfoe_x509::RootStore;

    fn factory_for(name: &str) -> SubstituteFactory {
        let specs = catalog();
        let (i, spec) = specs
            .iter()
            .enumerate()
            .find(|(_, s)| s.display_name() == name)
            .unwrap_or_else(|| panic!("{name} not in catalog"));
        SubstituteFactory::new(ProductId(i as u16), spec.clone())
    }

    fn dst() -> Ipv4 {
        Ipv4([203, 0, 113, 7])
    }

    #[test]
    fn substitute_validates_against_injected_root() {
        let f = factory_for("Bitdefender");
        let chain = f.substitute_chain("tlsresearch.byu.edu", dst(), None);
        assert_eq!(chain.len(), 2);
        let mut store = RootStore::new();
        store.inject_root(f.root_cert().clone());
        store.validate(&chain, "tlsresearch.byu.edu", Time::from_ymd(2014, 6, 1)).unwrap();
    }

    #[test]
    fn substitute_rejected_without_injected_root() {
        let f = factory_for("Bitdefender");
        let chain = f.substitute_chain("tlsresearch.byu.edu", dst(), None);
        let store = RootStore::new();
        assert!(store.validate(&chain, "tlsresearch.byu.edu", Time::from_ymd(2014, 6, 1)).is_err());
    }

    #[test]
    fn caching_returns_identical_chain() {
        let f = factory_for("Bitdefender");
        let a = f.substitute_chain("h.example", dst(), None);
        let b = f.substitute_chain("h.example", dst(), None);
        assert_eq!(a[0].to_der(), b[0].to_der());
        assert_eq!(f.minted(), 1);
        f.substitute_chain("other.example", dst(), None);
        assert_eq!(f.minted(), 2);
    }

    #[test]
    fn minted_counts_distinct_chains_exactly_under_concurrent_misses() {
        // The mint counter's exactness contract: stampeding threads
        // racing on overlapping hosts must produce exactly one mint per
        // distinct chain — no double-mints (the striped cache mints under
        // its shard lock), no undercounting.
        let f = std::sync::Arc::new(factory_for("Bitdefender"));
        let distinct_hosts = 12;
        std::thread::scope(|s| {
            for t in 0..8 {
                let f = f.clone();
                s.spawn(move || {
                    for i in 0..distinct_hosts * 4 {
                        // Every thread walks the same host set, offset so
                        // misses collide from different starting points.
                        let h = format!("c{}.example", (i + t) % distinct_hosts);
                        f.substitute_chain(&h, dst(), None);
                    }
                });
            }
        });
        assert_eq!(f.minted(), distinct_hosts, "one mint per distinct chain");
    }

    #[test]
    fn cross_study_stampede_mints_each_chain_exactly_once() {
        // The process-wide-cache sibling of the single-factory stampede
        // above: two factories with the same (product, era) minting into
        // ONE shared cache — exactly what two studies' models do through
        // `cache::process_cache` — race from 8 threads over the same host
        // set. Every chain must be minted exactly once across BOTH
        // factories (first-mints-only), and both must serve identical
        // bytes. A private shared cache keeps the counts exact under
        // `cargo test`'s process-wide parallelism.
        let specs = catalog();
        let shared = std::sync::Arc::new(SubstituteCache::new());
        let mk = || {
            std::sync::Arc::new(SubstituteFactory::with_cache(
                ProductId(0),
                specs[0].clone(),
                StudyEra::Study1,
                shared.clone(),
            ))
        };
        let (study_a, study_b) = (mk(), mk());
        let distinct_hosts = 12;
        std::thread::scope(|s| {
            for t in 0..8 {
                // Odd threads act as study A, even threads as study B.
                let f = if t % 2 == 0 { study_a.clone() } else { study_b.clone() };
                s.spawn(move || {
                    for i in 0..distinct_hosts * 4 {
                        let h = format!("x{}.example", (i + t) % distinct_hosts);
                        f.substitute_chain(&h, dst(), None);
                    }
                });
            }
        });
        assert_eq!(
            study_a.minted() + study_b.minted(),
            distinct_hosts,
            "one mint per distinct chain across both studies (a {} + b {})",
            study_a.minted(),
            study_b.minted()
        );
        let (_, misses) = shared.stats();
        assert_eq!(misses as usize, distinct_hosts);
        for i in 0..distinct_hosts {
            let h = format!("x{i}.example");
            let a = study_a.substitute_chain(&h, dst(), None);
            let b = study_b.substitute_chain(&h, dst(), None);
            assert!(std::sync::Arc::ptr_eq(&a, &b), "both studies must serve one chain");
        }
    }

    #[test]
    fn issuer_org_matches_spec() {
        let f = factory_for("Bitdefender");
        let chain = f.substitute_chain("h.example", dst(), None);
        assert_eq!(chain[0].tbs.issuer.organization(), Some("Bitdefender"));
        assert_eq!(chain[0].key_bits(), 1024); // the §5.2 downgrade
    }

    #[test]
    fn null_issuer_product_mints_empty_issuer() {
        let f = factory_for("Null");
        let chain = f.substitute_chain("h.example", dst(), None);
        assert!(chain[0].tbs.issuer.is_empty());
    }

    #[test]
    fn iopfail_shares_one_512bit_md5_key() {
        let f = factory_for("IopFailZeroAccessCreate");
        let a = f.substitute_chain("a.example", dst(), None);
        let b = f.substitute_chain("b.example", dst(), None);
        assert_eq!(a[0].key_bits(), 512);
        assert_eq!(a[0].signature_alg, SignatureAlgorithm::Md5WithRsa);
        // Same public key on every substitute — the paper's fingerprint.
        assert_eq!(a[0].tbs.spki.key, b[0].tbs.spki.key);
        assert_eq!(a[0].tbs.issuer.common_name(), Some("IopFailZeroAccessCreate"));
        assert_eq!(a[0].tbs.issuer.organization(), None);
    }

    #[test]
    fn non_shared_products_use_multiple_leaf_keys() {
        let f = factory_for("Bitdefender");
        let hosts = [
            "a.example",
            "b.example",
            "c.example",
            "d.example",
            "e.example",
            "f.example",
            "g.example",
            "h.example",
        ];
        let mut keys = std::collections::HashSet::new();
        for h in hosts {
            keys.insert(format!("{:?}", f.substitute_chain(h, dst(), None)[0].tbs.spki.key));
        }
        assert!(keys.len() > 1, "expected key pool > 1, got {}", keys.len());
    }

    #[test]
    fn digicert_forger_copies_upstream_issuer() {
        // Build a fake upstream cert issued by "DigiCert High Assurance
        // CA-3" and check the forger copies that issuer verbatim.
        let upstream_ca = keys::keypair(999_001, 512);
        let upstream_leaf_key = keys::keypair(999_002, 512);
        let issuer = NameBuilder::new()
            .country("US")
            .organization("DigiCert Inc")
            .common_name("DigiCert High Assurance CA-3")
            .build();
        let upstream = CertificateBuilder::new()
            .issuer(issuer.clone())
            .subject(NameBuilder::new().common_name("tlsresearch.byu.edu").build())
            .san_dns(&["tlsresearch.byu.edu"])
            .sign(&upstream_leaf_key.public, &upstream_ca)
            .unwrap();

        let f = factory_for("DigiCert Inc");
        let chain = f.substitute_chain("tlsresearch.byu.edu", dst(), Some(&upstream));
        assert_eq!(chain[0].tbs.issuer, issuer, "issuer must be copied verbatim");
        // But the signature is NOT DigiCert's — it's the proxy's root.
        assert!(chain[0].verify_signature_with(&upstream_ca.public).is_err());
        assert!(chain[0].verify_signature_with(&f.root_public().clone()).is_ok());
    }

    #[test]
    fn distinct_mint_variants_get_distinct_serials() {
        // A wildcard-IP product minting the same host toward two
        // destinations produces two different certificates; they must
        // not share a serial under the one issuing root (RFC 5280).
        let f = factory_for("PerimeterWatch");
        let a = f.substitute_chain("h.example", Ipv4([203, 0, 113, 9]), None);
        let b = f.substitute_chain("h.example", Ipv4([198, 51, 100, 7]), None);
        assert_eq!(f.minted(), 2, "different /24s must be distinct cache slots");
        assert_ne!(a[0].tbs.subject, b[0].tbs.subject);
        assert_ne!(a[0].tbs.serial, b[0].tbs.serial);
    }

    #[test]
    fn wildcard_ip_subject_covers_subnet_not_host() {
        let f = factory_for("PerimeterWatch");
        assert_eq!(f.spec().subject_style, SubjectStyle::WildcardIpSubnet);
        let chain = f.substitute_chain("h.example", Ipv4([203, 0, 113, 9]), None);
        let leaf = &chain[0];
        assert!(!leaf.matches_host("h.example"), "wildcard-IP subject must mismatch");
        assert!(leaf.tbs.subject.common_name().unwrap().starts_with("*.203.0.113"));
    }

    #[test]
    fn wrong_domain_products_issue_for_other_domains() {
        let f = factory_for("Misissued Relay A");
        let chain = f.substitute_chain("tlsresearch.byu.edu", dst(), None);
        assert!(chain[0].matches_host("mail.google.com"));
        assert!(!chain[0].matches_host("tlsresearch.byu.edu"));
    }

    #[test]
    fn tweaked_subject_still_matches_host() {
        let f = factory_for("Annotating Middlebox");
        let chain = f.substitute_chain("h.example", dst(), None);
        assert!(chain[0].matches_host("h.example"));
        assert_eq!(chain[0].tbs.subject.organizational_unit(), Some("content-filtered"));
    }

    #[test]
    fn overachiever_has_2432_bit_key() {
        let f = factory_for("Overachiever Security");
        let chain = f.substitute_chain("h.example", dst(), None);
        assert_eq!(chain[0].key_bits(), 2432);
    }

    #[test]
    fn sha256_product_signs_sha256() {
        let f = factory_for("ModernTLS Gateway");
        let chain = f.substitute_chain("h.example", dst(), None);
        assert_eq!(chain[0].signature_alg, SignatureAlgorithm::Sha256WithRsa);
    }
}
