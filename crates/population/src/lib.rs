//! # tlsfoe-population
//!
//! The generative model of "who is out there": every interception product
//! the paper observed, with its measured behaviour, plus per-country
//! prevalence. This crate is the simulation's *ground truth* — the
//! measurement pipeline in `tlsfoe-core` must recover these parameters
//! through real TLS handshakes, exactly as the field study recovered the
//! real population's parameters through real ad impressions.
//!
//! * [`products`] — the catalog: Bitdefender, PSafe, Sendori, Kurupira,
//!   Superfish, `IopFailZeroAccessCreate`, null-issuer ghosts, telecoms…
//!   each with category, prevalence weights for both studies, and
//!   certificate-minting behaviour (key size, signature hash, issuer
//!   forgery, subject mutation, shared keys),
//! * [`keys`] — deterministic per-product key material (cached; the
//!   IopFail malware's single shared 512-bit leaf key lives here),
//! * [`cache`] — the sharded, lock-striped substitute-chain cache one
//!   [`PopulationModel`] shares across every factory and worker thread
//!   (with the determinism contract that makes that safe),
//! * [`factory`] — substitute-certificate minting per product behaviour,
//! * [`proxy`] — the actual TLS proxy: a netsim [`tlsfoe_netsim::net::Interceptor`]
//!   that terminates TLS client-side with a substitute chain, optionally
//!   validates upstream (Bitdefender blocks forged upstreams; Kurupira
//!   masks them — §5.2), and transparently splices whitelisted hosts
//!   (§6.3),
//! * [`model`] — per-country interception rates and client sampling for
//!   study 1 and study 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod cache;
pub mod factory;
pub mod keys;
pub mod model;
pub mod products;
pub mod proxy;
pub mod striped;

pub use cache::{SubstituteCache, SubstituteEntry, SubstituteKey};
pub use factory::SubstituteFactory;
pub use model::{ClientProfile, PopulationModel, StudyEra};
pub use products::{ProductId, ProductSpec, ProxyCategory, UpstreamPolicy};
pub use proxy::TlsProxy;
