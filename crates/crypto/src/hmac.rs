//! HMAC (RFC 2104) over any of the workspace digest algorithms.
//!
//! Used by the deterministic random bit generator ([`crate::drbg`]) in
//! HMAC-DRBG style, and available to the TLS layer for PRF-like needs.

use crate::HashAlg;

/// Compute `HMAC(key, message)` with the given hash algorithm.
///
/// Keys longer than the block size (64 bytes for all three supported
/// algorithms) are first hashed, per RFC 2104.
pub fn hmac(alg: HashAlg, key: &[u8], message: &[u8]) -> Vec<u8> {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kd = alg.digest(key);
        key_block[..kd.len()].copy_from_slice(&kd);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Vec::with_capacity(BLOCK + message.len());
    inner.extend_from_slice(&ipad);
    inner.extend_from_slice(message);
    let inner_digest = alg.digest(&inner);
    let mut outer = Vec::with_capacity(BLOCK + inner_digest.len());
    outer.extend_from_slice(&opad);
    outer.extend_from_slice(&inner_digest);
    alg.digest(&outer)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 (MD5/SHA-1) and RFC 4231 (SHA-256) test vectors.
    #[test]
    fn rfc2202_md5() {
        assert_eq!(
            hex(&hmac(HashAlg::Md5, &[0x0b; 16], b"Hi There")),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );
        assert_eq!(
            hex(&hmac(HashAlg::Md5, b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
    }

    #[test]
    fn rfc2202_sha1() {
        assert_eq!(
            hex(&hmac(HashAlg::Sha1, &[0x0b; 20], b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            hex(&hmac(HashAlg::Sha1, b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc4231_sha256() {
        assert_eq!(
            hex(&hmac(HashAlg::Sha256, &[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            hex(&hmac(HashAlg::Sha256, b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // A key longer than the block size must behave like its digest.
        let long_key = vec![0xaau8; 100];
        let hashed_key = HashAlg::Sha256.digest(&long_key);
        assert_eq!(
            hmac(HashAlg::Sha256, &long_key, b"msg"),
            hmac(HashAlg::Sha256, &hashed_key, b"msg")
        );
    }
}
