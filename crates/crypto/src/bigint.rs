//! Arbitrary-precision unsigned integers.
//!
//! [`Ubig`] stores magnitude as little-endian `u64` limbs with no leading
//! zero limbs (canonical form; zero is the empty limb vector). The
//! operations implemented are exactly those RSA needs: comparison,
//! add/sub/mul, Knuth Algorithm-D division, shifts, modular
//! exponentiation, gcd and modular inverse (extended binary Euclid on
//! signed intermediates).
//!
//! Design note (mirroring the smoltcp philosophy the workspace follows):
//! simplicity and robustness over cleverness — schoolbook multiplication
//! and textbook division, heavily tested, no unsafe. The one performance
//! concession lives in [`crate::montgomery`]: [`Ubig::modpow`] dispatches
//! odd moduli to the division-free Montgomery path and keeps the
//! schoolbook ladder ([`Ubig::modpow_schoolbook`]) as the reference
//! implementation and even-modulus fallback.

use crate::CryptoError;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct Ubig {
    limbs: Vec<u64>,
}

impl Ubig {
    /// The value 0.
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Construct from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }

    /// Construct from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Serialize to big-endian bytes with no leading zeros (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the most significant limb.
                let skip = (limb.leading_zeros() / 8) as usize;
                out.extend_from_slice(&bytes[skip.min(7)..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serialize to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// Returns `None` if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the low bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (LSB is bit 0).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Set bit `i`, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << off;
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// The little-endian `u64` limbs (no trailing zeros; empty for 0).
    ///
    /// Exposed for the Montgomery subsystem, which works on fixed-width
    /// limb slices of the modulus's length.
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Construct from little-endian limbs (trailing zeros allowed).
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Ubig {
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// `self + other`.
    pub fn add(&self, other: &Ubig) -> Ubig {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in longer.iter().enumerate() {
            let b = shorter.get(i).copied().unwrap_or(0);
            let (s1, c1) = l.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`; panics in debug if `other > self` (checked variant
    /// below for fallible use).
    pub fn sub(&self, other: &Ubig) -> Ubig {
        self.checked_sub(other).expect("Ubig::sub underflow (other > self)")
    }

    /// `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &Ubig) -> Option<Ubig> {
        if self.cmp_mag(other) == core::cmp::Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Ubig { limbs: out };
        n.normalize();
        Some(n)
    }

    fn cmp_mag(&self, other: &Ubig) -> core::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &Ubig) -> Ubig {
        if self.is_zero() || other.is_zero() {
            return Ubig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// Multiply by a single `u64`.
    pub fn mul_u64(&self, m: u64) -> Ubig {
        if m == 0 || self.is_zero() {
            return Ubig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = (l as u128) * (m as u128) + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// Logical left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Ubig {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// Logical right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Ubig {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u64;
            for l in out.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (64 - bit_shift);
                *l = new;
            }
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// Quotient and remainder: `(self / div, self % div)`.
    ///
    /// Implements Knuth TAOCP vol. 2, Algorithm 4.3.1 D, with `u64` limbs
    /// and `u128` intermediates.
    pub fn div_rem(&self, div: &Ubig) -> Result<(Ubig, Ubig), CryptoError> {
        if div.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if self.cmp_mag(div) == core::cmp::Ordering::Less {
            return Ok((Ubig::zero(), self.clone()));
        }
        // Single-limb divisor: simple short division.
        if div.limbs.len() == 1 {
            let d = div.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u128;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | l as u128;
                q.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            q.reverse();
            let mut quo = Ubig { limbs: q };
            quo.normalize();
            return Ok((quo, Ubig::from_u64(rem as u64)));
        }

        // D1: normalize so the divisor's top limb has its MSB set.
        let shift =
            div.limbs.last().expect("invariant: divisor is nonzero").leading_zeros() as usize;
        let v = div.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        let n = v.len();
        let m = u.len() - n;
        u.push(0); // u now has m + n + 1 limbs.

        let v_top = v[n - 1];
        let v_second = v[n - 2];
        let mut q = vec![0u64; m + 1];

        // D2..D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two dividend limbs.
            let numer = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numer / v_top as u128;
            let mut rhat = numer % v_top as u128;
            // Refine: qhat is at most 2 too large.
            while qhat >> 64 != 0 || qhat * v_second as u128 > ((rhat << 64) | u[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
                u[j + i] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = t as u64;
            borrow = t >> 64;

            q[j] = qhat as u64;
            // D6: if we subtracted too much, add back one divisor.
            if borrow != 0 {
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = t as u64;
                    carry = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
        }

        let mut quo = Ubig { limbs: q };
        quo.normalize();
        let mut rem = Ubig { limbs: u[..n].to_vec() };
        rem.normalize();
        Ok((quo, rem.shr(shift)))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Ubig) -> Result<Ubig, CryptoError> {
        Ok(self.div_rem(m)?.1)
    }

    /// `self mod d` for a single-limb divisor, without allocating.
    ///
    /// One `u128` division per limb — the cheap primitive behind the
    /// batched small-prime trial division in [`crate::rsa`].
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn rem_u64(&self, d: u64) -> u64 {
        assert!(d != 0, "rem_u64 divisor must be non-zero");
        let mut rem = 0u128;
        for &l in self.limbs.iter().rev() {
            rem = ((rem << 64) | l as u128) % d as u128;
        }
        rem as u64
    }

    /// `(self * other) mod m`.
    pub fn mulmod(&self, other: &Ubig, m: &Ubig) -> Result<Ubig, CryptoError> {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m`.
    ///
    /// Odd moduli (every RSA modulus, prime and Miller–Rabin candidate)
    /// take the division-free Montgomery path
    /// ([`crate::montgomery::MontgomeryCtx`]) through the process-wide
    /// [`crate::ctxcache::shared_ctx_cache`], so repeated convenience
    /// calls against one modulus — non-CRT signatures, ad-hoc lab
    /// exponentiations — derive the per-modulus constants (`R² mod n`,
    /// the one remaining division) once, not per call. Even moduli fall
    /// back to [`Ubig::modpow_schoolbook`]. Call sites that hold a
    /// context anyway should call
    /// [`crate::montgomery::MontgomeryCtx::modpow`] directly and skip
    /// the cache probe.
    pub fn modpow(&self, exp: &Ubig, m: &Ubig) -> Result<Ubig, CryptoError> {
        if m.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if m.is_one() {
            return Ok(Ubig::zero());
        }
        if m.is_odd() && !crate::schoolbook_forced() {
            crate::ctxcache::shared_ctx_cache().get(m)?.modpow(self, exp)
        } else {
            self.modpow_schoolbook(exp, m)
        }
    }

    /// `self^exp mod m` by left-to-right square-and-multiply with a full
    /// division per step.
    ///
    /// Works for any modulus (including even ones, which Montgomery
    /// reduction cannot handle) and serves as the reference
    /// implementation the property tests compare the fast path against.
    pub fn modpow_schoolbook(&self, exp: &Ubig, m: &Ubig) -> Result<Ubig, CryptoError> {
        if m.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if m.is_one() {
            return Ok(Ubig::zero());
        }
        let mut result = Ubig::one();
        let base = self.rem(m)?;
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            result = result.mulmod(&result, m)?;
            if exp.bit(i) {
                result = result.mulmod(&base, m)?;
            }
        }
        Ok(result)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Ubig) -> Ubig {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while !a.is_odd() && !b.is_odd() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while !a.is_odd() {
            a = a.shr(1);
        }
        loop {
            while !b.is_odd() {
                b = b.shr(1);
            }
            if a.cmp_mag(&b) == core::cmp::Ordering::Greater {
                core::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Modular inverse: `self^-1 mod m`, or an error if not coprime.
    ///
    /// Extended Euclid with signed bookkeeping carried as (sign, magnitude).
    pub fn modinv(&self, m: &Ubig) -> Result<Ubig, CryptoError> {
        if m.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        // Invariants: r0 = t0*self (mod m), r1 = t1*self (mod m).
        let mut r0 = m.clone();
        let mut r1 = self.rem(m)?;
        // t values as (negative?, magnitude).
        let mut t0 = (false, Ubig::zero());
        let mut t1 = (false, Ubig::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1)?;
            // t2 = t0 - q * t1  (signed arithmetic on magnitudes)
            let q_t1 = q.mul(&t1.1);
            let t2 = signed_sub(&t0, &(t1.0, q_t1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return Err(CryptoError::NoInverse);
        }
        // Reduce t0 into [0, m).
        let mag = t0.1.rem(m)?;
        if t0.0 && !mag.is_zero() {
            Ok(m.sub(&mag))
        } else {
            Ok(mag)
        }
    }
}

/// `a - b` on signed (negative?, magnitude) pairs.
fn signed_sub(a: &(bool, Ubig), b: &(bool, Ubig)) -> (bool, Ubig) {
    match (a.0, b.0) {
        // a - b with both non-negative.
        (false, false) => match a.1.checked_sub(&b.1) {
            Some(m) => (false, m),
            None => (true, b.1.sub(&a.1)),
        },
        // a - (-b) = a + b.
        (false, true) => (false, a.1.add(&b.1)),
        // -a - b = -(a + b).
        (true, false) => (true, a.1.add(&b.1)),
        // -a - (-b) = b - a.
        (true, true) => match b.1.checked_sub(&a.1) {
            Some(m) => (false, m),
            None => (true, a.1.sub(&b.1)),
        },
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.cmp_mag(other)
    }
}

impl core::fmt::Debug for Ubig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_zero() {
            return write!(f, "Ubig(0x0)");
        }
        write!(f, "Ubig(0x")?;
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ub(v: u128) -> Ubig {
        Ubig::from_bytes_be(&v.to_be_bytes())
    }

    #[test]
    fn roundtrip_bytes() {
        for v in [0u128, 1, 255, 256, u64::MAX as u128, u128::MAX, 1 << 64] {
            let n = ub(v);
            let back = Ubig::from_bytes_be(&n.to_bytes_be());
            assert_eq!(n, back, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn leading_zeros_ignored() {
        let a = Ubig::from_bytes_be(&[0, 0, 0, 1, 2]);
        let b = Ubig::from_bytes_be(&[1, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn padded_serialization() {
        let n = ub(0x1234);
        assert_eq!(n.to_bytes_be_padded(4).unwrap(), vec![0, 0, 0x12, 0x34]);
        assert!(n.to_bytes_be_padded(1).is_none());
        assert_eq!(Ubig::zero().to_bytes_be_padded(2).unwrap(), vec![0, 0]);
    }

    #[test]
    fn add_sub_small() {
        let a = ub(u64::MAX as u128);
        let b = ub(1);
        assert_eq!(a.add(&b), ub(u64::MAX as u128 + 1));
        assert_eq!(a.add(&b).sub(&b), a);
        assert!(b.checked_sub(&a).is_none());
    }

    #[test]
    fn mul_known() {
        let a = ub(u64::MAX as u128);
        assert_eq!(a.mul(&a), ub((u64::MAX as u128) * (u64::MAX as u128)));
        assert_eq!(a.mul(&Ubig::zero()), Ubig::zero());
        assert_eq!(a.mul_u64(2), ub(2 * u64::MAX as u128));
    }

    #[test]
    fn shifts() {
        let a = ub(0x1234_5678_9abc_def0);
        assert_eq!(a.shl(4).shr(4), a);
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shl(67).shr(67), a);
        assert_eq!(a.shr(200), Ubig::zero());
    }

    #[test]
    fn bit_len_and_bits() {
        assert_eq!(Ubig::zero().bit_len(), 0);
        assert_eq!(ub(1).bit_len(), 1);
        assert_eq!(ub(0x8000_0000_0000_0000).bit_len(), 64);
        assert_eq!(ub(1 << 64).bit_len(), 65);
        let mut n = Ubig::zero();
        n.set_bit(130);
        assert!(n.bit(130));
        assert!(!n.bit(129));
        assert_eq!(n.bit_len(), 131);
    }

    #[test]
    fn div_rem_small() {
        let a = ub(1000);
        let (q, r) = a.div_rem(&ub(7)).unwrap();
        assert_eq!(q, ub(142));
        assert_eq!(r, ub(6));
        assert!(a.div_rem(&Ubig::zero()).is_err());
        let (q, r) = ub(5).div_rem(&ub(10)).unwrap();
        assert_eq!(q, Ubig::zero());
        assert_eq!(r, ub(5));
    }

    #[test]
    fn div_rem_multi_limb() {
        // (2^128 - 1) / (2^64 + 1) = 2^64 - 1, remainder 0
        let a = ub(u128::MAX);
        let d = ub((1u128 << 64) + 1);
        let (q, r) = a.div_rem(&d).unwrap();
        assert_eq!(q, ub(u64::MAX as u128));
        assert_eq!(r, Ubig::zero());
    }

    #[test]
    fn div_rem_reconstructs() {
        // q*d + r == a with r < d on structured multi-limb cases.
        let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (vec![0xff; 40], vec![0x01, 0x00, 0x00, 0x00, 0x01]),
            (vec![0xab; 33], vec![0xcd; 17]),
            (vec![0x80; 64], vec![0x80; 32]),
            (vec![0x01; 24], vec![0xff; 8]),
        ];
        for (ab, db) in cases {
            let a = Ubig::from_bytes_be(&ab);
            let d = Ubig::from_bytes_be(&db);
            let (q, r) = a.div_rem(&d).unwrap();
            assert!(r < d);
            assert_eq!(q.mul(&d).add(&r), a);
        }
    }

    #[test]
    fn modpow_small() {
        // 4^13 mod 497 = 445
        assert_eq!(ub(4).modpow(&ub(13), &ub(497)).unwrap(), ub(445));
        // Fermat: a^(p-1) mod p == 1 for prime p
        let p = ub(1_000_000_007);
        assert_eq!(ub(12345).modpow(&p.sub(&Ubig::one()), &p).unwrap(), ub(1));
        assert_eq!(ub(5).modpow(&ub(0), &ub(7)).unwrap(), ub(1));
        assert_eq!(ub(5).modpow(&ub(100), &Ubig::one()).unwrap(), Ubig::zero());
    }

    #[test]
    fn gcd_known() {
        assert_eq!(ub(48).gcd(&ub(18)), ub(6));
        assert_eq!(ub(0).gcd(&ub(5)), ub(5));
        assert_eq!(ub(7).gcd(&ub(0)), ub(7));
        assert_eq!(ub(17).gcd(&ub(13)), ub(1));
        assert_eq!(ub(1 << 20).gcd(&ub(1 << 12)), ub(1 << 12));
    }

    #[test]
    fn modinv_known() {
        // 3 * 4 = 12 ≡ 1 (mod 11)
        assert_eq!(ub(3).modinv(&ub(11)).unwrap(), ub(4));
        // 65537^-1 mod a larger modulus, verified by multiplication.
        let m = ub(0xffff_ffff_ffff_ffc5); // large prime-ish modulus
        let e = ub(65537);
        if let Ok(inv) = e.modinv(&m) {
            assert_eq!(e.mulmod(&inv, &m).unwrap(), Ubig::one());
        }
        // No inverse when not coprime.
        assert!(ub(6).modinv(&ub(9)).is_err());
    }

    #[test]
    fn ordering() {
        assert!(ub(5) < ub(6));
        assert!(ub(1 << 64) > ub(u64::MAX as u128));
        assert_eq!(ub(42).cmp(&ub(42)), core::cmp::Ordering::Equal);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Ubig::zero()), "Ubig(0x0)");
        assert_eq!(format!("{:?}", ub(0x1f)), "Ubig(0x1f)");
    }
}
