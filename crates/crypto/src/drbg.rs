//! Deterministic random bit generation.
//!
//! Every stochastic element of the workspace — population sampling, ad
//! auctions, network jitter, RSA key generation — draws from a [`Drbg`]
//! seeded (directly or via derived sub-seeds) from one experiment seed, so
//! any table in EXPERIMENTS.md can be regenerated bit-for-bit.
//!
//! The core generator is xoshiro256** (public domain, Blackman & Vigna)
//! seeded through SplitMix64, which is also how `rand`'s `SmallRng` family
//! seeds; we implement it ourselves so the crypto crate stays
//! dependency-free and the sequence is pinned forever regardless of
//! upstream crate changes.

/// Minimal RNG interface used across the workspace.
///
/// A trait (rather than a concrete type) so tests can substitute
/// fixed-output generators when exercising e.g. prime-generation retry
/// logic.
pub trait RngCore64 {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Uniform value in `[0, bound)` via Lemire-style widening multiply
    /// with rejection (unbiased).
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to the unit interval).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// SplitMix64: used to expand a single `u64` seed into generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workspace's general-purpose deterministic RNG.
#[derive(Debug, Clone)]
pub struct Drbg {
    s: [u64; 4],
}

impl Drbg {
    /// Seed the generator (SplitMix64-expanded, per the reference code).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Drbg { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Derive an independent child generator for a named subsystem.
    ///
    /// Mixing in a label keeps e.g. the ad-auction stream independent of
    /// the population stream even though both come from one root seed, so
    /// adding draws to one subsystem never perturbs another (important for
    /// comparing ablations).
    pub fn fork(&self, label: &str) -> Drbg {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a offset basis
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Drbg::new(h ^ self.s[0].rotate_left(17) ^ self.s[3])
    }
}

impl RngCore64 for Drbg {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Drbg::new(42);
        let mut b = Drbg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Drbg::new(1);
        let mut b = Drbg::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 should produce distinct streams");
    }

    #[test]
    fn fork_independent_of_parent_draws() {
        let root = Drbg::new(7);
        let mut child1 = root.fork("population");
        let mut child2 = root.fork("population");
        assert_eq!(child1.next_u64(), child2.next_u64());
        let mut other = root.fork("auction");
        assert_ne!(child1.next_u64(), other.next_u64());
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut rng = Drbg::new(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // A second fill must differ (overwhelmingly likely).
        let first = buf;
        rng.fill_bytes(&mut buf);
        assert_ne!(first, buf);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = Drbg::new(3);
        for bound in [1u64, 2, 7, 100, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_all_residues() {
        let mut rng = Drbg::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Drbg::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = Drbg::new(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.0041)).count();
        // 0.41% of 100k = 410; allow generous tolerance.
        assert!((300..550).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the public-domain C code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(sm.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(sm.next_u64(), 0x06c45d188009454f);
    }
}
