//! Process-wide LRU of [`MontgomeryCtx`]s, keyed by modulus.
//!
//! Chain validation verifies many signatures against a small, stable set
//! of public keys (root-store anchors, a handful of proxy roots, the
//! per-host server keys), and non-CRT signing exponentiates repeatedly
//! against the same public modulus. Before this cache every
//! [`crate::RsaPublicKey::verify`] call re-derived the per-modulus
//! Montgomery constants — one `R² mod n` division per call, the last
//! division left on the verify hot path — and every
//! [`crate::Ubig::modpow`] convenience call still did. Both now ride
//! [`shared_ctx_cache`], making that a once-per-modulus cost.
//!
//! Design:
//!
//! * keyed by the modulus limbs, so equal moduli share a context no
//!   matter which `RsaPublicKey` clone they arrive through;
//! * a single `Mutex` around a `HashMap` + logical-clock LRU. The
//!   critical section is a hash probe (the expensive context *build*
//!   happens outside the lock), so contention across study worker
//!   threads is negligible next to the ~µs-scale exponentiations the
//!   contexts are used for;
//! * bounded ([`MontCtxCache::capacity`]); eviction drops the
//!   least-recently-used modulus. The corpus of distinct verify moduli
//!   in a full study run (18 host keys + ~40 product roots + leaf pools)
//!   sits far below the default capacity, so steady-state hit rate is
//!   ~100%;
//! * deterministic: a context is a pure function of its modulus, so a
//!   lost race (two threads building the same context) yields
//!   byte-identical results whichever insert wins.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::bigint::Ubig;
use crate::montgomery::MontgomeryCtx;
use crate::CryptoError;

/// Default capacity of the process-wide verify cache (distinct moduli).
pub const DEFAULT_CAPACITY: usize = 256;

/// A bounded, thread-safe LRU of [`MontgomeryCtx`] keyed by modulus.
#[derive(Debug)]
pub struct MontCtxCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Vec<u64>, Entry>,
    /// Logical clock; bumped on every access for LRU bookkeeping.
    tick: u64,
}

#[derive(Debug)]
struct Entry {
    ctx: Arc<MontgomeryCtx>,
    last_used: u64,
}

impl MontCtxCache {
    /// An empty cache holding at most `capacity` contexts.
    pub fn new(capacity: usize) -> MontCtxCache {
        MontCtxCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Maximum number of cached contexts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch (or build and insert) the context for an odd `modulus`.
    ///
    /// Errors exactly as [`MontgomeryCtx::new`] does (even or zero
    /// modulus); errors are not cached.
    pub fn get(&self, modulus: &Ubig) -> Result<Arc<MontgomeryCtx>, CryptoError> {
        {
            let mut inner = self.inner.lock().expect("ctx cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(modulus.limbs()) {
                entry.last_used = tick;
                let ctx = entry.ctx.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(ctx);
            }
        }
        // Build outside the lock — the R² division is the slow part, and
        // a racing duplicate build produces an identical context.
        let ctx = Arc::new(MontgomeryCtx::new(modulus)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("ctx cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner
            .map
            .entry(modulus.limbs().to_vec())
            .or_insert_with(|| Entry { ctx, last_used: tick });
        entry.last_used = tick;
        let ctx = entry.ctx.clone();
        while inner.map.len() > self.capacity {
            let Some(oldest) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.map.remove(&oldest);
        }
        Ok(ctx)
    }

    /// True when a context for `modulus` is currently cached.
    pub fn contains(&self, modulus: &Ubig) -> bool {
        self.inner.lock().expect("ctx cache poisoned").map.contains_key(modulus.limbs())
    }

    /// Number of contexts currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ctx cache poisoned").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since process start (for benches/tests).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

/// The process-wide context cache (capacity [`DEFAULT_CAPACITY`]) that
/// [`crate::RsaPublicKey::verify`], non-CRT signing and every odd-modulus
/// [`crate::Ubig::modpow`] ride.
pub fn shared_ctx_cache() -> &'static MontCtxCache {
    static CACHE: OnceLock<MontCtxCache> = OnceLock::new();
    CACHE.get_or_init(|| MontCtxCache::new(DEFAULT_CAPACITY))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn odd(v: u64) -> Ubig {
        Ubig::from_u64(v | 1)
    }

    #[test]
    fn same_modulus_shares_one_context() {
        let cache = MontCtxCache::new(8);
        let a = cache.get(&odd(1_000_003)).unwrap();
        let b = cache.get(&odd(1_000_003)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn cached_context_computes_correctly() {
        let cache = MontCtxCache::new(8);
        let m = odd(497);
        let ctx = cache.get(&m).unwrap();
        assert_eq!(
            ctx.modpow(&Ubig::from_u64(4), &Ubig::from_u64(13)).unwrap(),
            Ubig::from_u64(445)
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = MontCtxCache::new(2);
        let (m1, m2, m3) = (odd(101), odd(201), odd(301));
        cache.get(&m1).unwrap();
        cache.get(&m2).unwrap();
        cache.get(&m1).unwrap(); // m1 is now fresher than m2
        cache.get(&m3).unwrap(); // evicts m2
        assert_eq!(cache.len(), 2);
        let (_, misses_before) = cache.stats();
        cache.get(&m1).unwrap(); // still cached — no new miss
        let (_, misses_after) = cache.stats();
        assert_eq!(misses_before, misses_after);
        cache.get(&m2).unwrap(); // was evicted — rebuilds
        let (_, misses_rebuilt) = cache.stats();
        assert_eq!(misses_rebuilt, misses_after + 1);
    }

    #[test]
    fn even_and_zero_moduli_error_and_are_not_cached() {
        let cache = MontCtxCache::new(4);
        assert_eq!(cache.get(&Ubig::from_u64(10)).unwrap_err(), CryptoError::EvenModulus);
        assert_eq!(cache.get(&Ubig::zero()).unwrap_err(), CryptoError::DivisionByZero);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = MontCtxCache::new(16);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..64u64 {
                        let m = odd(1_000_003 + 2 * (i % 8));
                        let ctx = cache.get(&m).unwrap();
                        assert_eq!(
                            ctx.modpow(&Ubig::from_u64(2), &Ubig::from_u64(10)).unwrap(),
                            Ubig::from_u64(1024)
                        );
                    }
                });
            }
        });
        assert_eq!(cache.len(), 8);
    }
}
