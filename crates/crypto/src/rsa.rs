//! RSA key generation and PKCS#1 v1.5 signatures.
//!
//! The paper's certificate corpus contains RSA keys of 512, 1024, 2048 and
//! even 2432 bits (§5.2). Key generation here supports any size ≥ 256 bits
//! so the negligence analyzer can be exercised against real signatures at
//! every size the paper observed — including the single shared 512-bit key
//! of the `IopFailZeroAccessCreate` malware.
//!
//! Signatures are RSASSA-PKCS1-v1_5 (RFC 8017 §8.2) with proper DER
//! `DigestInfo` prefixes for MD5, SHA-1 and SHA-256.

use crate::bigint::Ubig;
use crate::drbg::RngCore64;
use crate::montgomery::{with_thread_scratch, ModpowPlan, ModpowScratch, MontgomeryCtx};
use crate::{CryptoError, HashAlg};

/// Public RSA key: modulus and exponent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    /// Modulus `n`.
    pub n: Ubig,
    /// Public exponent `e` (65537 for all generated keys).
    pub e: Ubig,
}

/// RSA key pair (public part plus private exponent and factors).
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    /// The public half.
    pub public: RsaPublicKey,
    /// Private exponent `d`.
    pub d: Ubig,
    /// Prime factor `p`.
    pub p: Ubig,
    /// Prime factor `q`.
    pub q: Ubig,
    /// Precomputed CRT material (populated by [`RsaKeyPair::generate`]).
    /// `None` only for keys assembled by hand; signing then falls back to
    /// a full-size exponentiation mod `n`.
    pub crt: Option<RsaCrt>,
}

/// Window width for the precomputed CRT half-exponent plans.
///
/// Measured decision (this substrate; ROADMAP's mint-path section):
/// 5-bit windows trade 16 extra table multiplies for ~20 fewer window
/// multiplies — arithmetic says ~0.3% fewer Montgomery multiplies on a
/// 512-bit exponent, and the measured ladder agrees it's a wash: 5-bit
/// is **+1.3% / −0.6% / −0.8%** vs 4-bit at 512/1024/2048-bit
/// half-exponents (min-of-blocks, interleaved). An honest tie, recorded
/// as a negative result; 4 stays because it wins (within noise) at the
/// 512-bit half-exponents that dominate minting, halves the table's
/// scratch footprint, and shares the general `modpow` ladder's width.
pub const CRT_WINDOW_BITS: u8 = 4;

/// Precomputed Chinese-Remainder-Theorem private-key material.
///
/// Signing with CRT performs two half-size Montgomery exponentiations
/// (`m^dp mod p`, `m^dq mod q`) plus a Garner recombination instead of
/// one full-size exponentiation mod `n` — ~4× less work, since
/// exponentiation cost grows roughly cubically with operand size. The
/// Montgomery contexts for both primes are built once here and reused by
/// every signature, and the half-exponents are window-recoded once into
/// [`ModpowPlan`]s ([`CRT_WINDOW_BITS`]-bit windows) so per-signature
/// ladders replay a byte array instead of re-extracting exponent bits.
#[derive(Debug, Clone)]
pub struct RsaCrt {
    /// Window recoding of `d mod (p-1)`, computed once per key.
    dp_plan: ModpowPlan,
    /// Window recoding of `d mod (q-1)`, computed once per key.
    dq_plan: ModpowPlan,
    /// `q⁻¹ mod p` (Garner's coefficient).
    qinv: Ubig,
    /// Prime factor `p` (cached to keep the per-signature recombination
    /// free of `modulus()` re-materialization).
    p: Ubig,
    /// Prime factor `q`.
    q: Ubig,
    /// Montgomery context for arithmetic mod `p`.
    p_ctx: MontgomeryCtx,
    /// Montgomery context for arithmetic mod `q`.
    q_ctx: MontgomeryCtx,
}

impl RsaCrt {
    /// Precompute CRT parameters from the factors and private exponent.
    pub fn new(p: &Ubig, q: &Ubig, d: &Ubig) -> Result<RsaCrt, CryptoError> {
        let one = Ubig::one();
        let dp = d.rem(&p.sub(&one))?;
        let dq = d.rem(&q.sub(&one))?;
        Ok(RsaCrt {
            dp_plan: ModpowPlan::new(&dp, CRT_WINDOW_BITS),
            dq_plan: ModpowPlan::new(&dq, CRT_WINDOW_BITS),
            qinv: q.modinv(p)?,
            p: p.clone(),
            q: q.clone(),
            p_ctx: MontgomeryCtx::new(p)?,
            q_ctx: MontgomeryCtx::new(q)?,
        })
    }

    /// `m^d mod pq` via Garner's recombination (thread-local scratch).
    ///
    /// Produces exactly the value a direct `m.modpow(d, n)` would, so CRT
    /// and non-CRT signatures are byte-identical.
    pub fn private_exp(&self, m: &Ubig) -> Result<Ubig, CryptoError> {
        with_thread_scratch(|scratch| self.private_exp_with(m, scratch))
    }

    /// [`private_exp`](Self::private_exp) against caller-owned working
    /// memory: both half-exponentiations replay the per-key window plans
    /// through `scratch`, and the recombination's modular product rides
    /// the same buffers — no allocation beyond the intermediate `Ubig`
    /// results.
    pub fn private_exp_with(
        &self,
        m: &Ubig,
        scratch: &mut ModpowScratch,
    ) -> Result<Ubig, CryptoError> {
        let m1 = self.p_ctx.modpow_planned(m, &self.dp_plan, scratch)?;
        let m2 = self.q_ctx.modpow_planned(m, &self.dq_plan, scratch)?;
        // h = qinv · (m1 − m2) mod p. For generated keys p and q share a
        // bit length, so m2 < q < 2p and reducing m2 mod p is one
        // comparison and at most one subtraction; hand-assembled keys
        // with lopsided factors fall back to the real division.
        let m2_mod_p = if m2 < self.p {
            m2.clone()
        } else {
            let once = m2.sub(&self.p);
            if once < self.p {
                once
            } else {
                m2.rem(&self.p)?
            }
        };
        let diff = match m1.checked_sub(&m2_mod_p) {
            Some(d) => d,
            None => m1.add(&self.p).sub(&m2_mod_p),
        };
        let h = self.p_ctx.mulmod_with(&self.qinv, &diff, scratch)?;
        // s = m2 + q·h  (already < pq)
        Ok(m2.add(&self.q.mul(&h)))
    }

    /// The plans' window width (for benches asserting the measured
    /// 4-vs-5 decision stays what ROADMAP records).
    pub fn window_bits(&self) -> u8 {
        self.dp_plan.width()
    }
}

/// DER DigestInfo prefixes per RFC 8017 §9.2 note 1.
fn digest_info_prefix(alg: HashAlg) -> &'static [u8] {
    match alg {
        HashAlg::Md5 => &[
            0x30, 0x20, 0x30, 0x0c, 0x06, 0x08, 0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x02, 0x05,
            0x05, 0x00, 0x04, 0x10,
        ],
        HashAlg::Sha1 => &[
            0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04,
            0x14,
        ],
        HashAlg::Sha256 => &[
            0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
            0x01, 0x05, 0x00, 0x04, 0x20,
        ],
    }
}

const FIRST_PRIMES: [u64; 60] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
];

/// Products of consecutive `FIRST_PRIMES` packed greedily into `u64`s.
///
/// Trial division then needs one multi-limb-by-`u64` remainder per product
/// (5 of them) instead of one full `div_rem` per prime (60 of them): a
/// small prime `p` divides `n` iff `gcd(n mod P, P) > 1` for the product
/// `P` containing `p`.
fn prime_products() -> &'static [u64] {
    static PRODUCTS: std::sync::OnceLock<Vec<u64>> = std::sync::OnceLock::new();
    PRODUCTS.get_or_init(|| {
        let mut products = Vec::new();
        let mut acc: u64 = 1;
        for &p in &FIRST_PRIMES {
            match acc.checked_mul(p) {
                Some(next) => acc = next,
                None => {
                    products.push(acc);
                    acc = p;
                }
            }
        }
        products.push(acc);
        products
    })
}

fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// True iff some prime in `FIRST_PRIMES` divides `n` — without any
/// multi-limb division beyond one short remainder per prime product.
fn has_small_factor(n: &Ubig) -> bool {
    prime_products().iter().any(|&prod| gcd_u64(n.rem_u64(prod), prod) > 1)
}

/// Decompose `n - 1 = d · 2^r` with `d` odd.
fn mr_decompose(n_minus_1: &Ubig) -> (Ubig, usize) {
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while !d.is_odd() {
        d = d.shr(1);
        r += 1;
    }
    (d, r)
}

/// One Miller–Rabin round: true iff base `a` *witnesses* that `n` is
/// composite (so `false` means "n is probably prime as far as `a` can
/// tell"). `ctx` is `None` under the `TLSFOE_SCHOOLBOOK` ablation.
fn mr_composite_witness(
    a: &Ubig,
    d: &Ubig,
    r: usize,
    n: &Ubig,
    n_minus_1: &Ubig,
    ctx: Option<&MontgomeryCtx>,
) -> bool {
    let mut x = match ctx {
        // Base 2 rides the square-and-double ladder: the multiply step
        // degenerates to an O(k) modular doubling, ~20% off the ladder
        // that kills almost every sieved-but-composite candidate.
        Some(ctx) if a == &Ubig::from_u64(2) => ctx.pow2mod(d),
        Some(ctx) => ctx.modpow(a, d),
        None => a.modpow_schoolbook(d, n),
    }
    .expect("nonzero modulus");
    if x.is_one() || &x == n_minus_1 {
        return false;
    }
    for _ in 0..r.saturating_sub(1) {
        x = match ctx {
            Some(ctx) => ctx.sqrmod(&x),
            None => x.mulmod(&x, n),
        }
        .expect("nonzero modulus");
        if &x == n_minus_1 {
            return false;
        }
    }
    true
}

/// Miller–Rabin core for an odd `n > 283` already known to have no small
/// factor: one fixed base-2 round, then `rounds` random witnesses.
///
/// The base-2 round costs one ladder like any witness but draws nothing
/// from `rng` and skips the random base's `rem(n-1)` bigint division —
/// and almost every composite that survives the small-prime sieve dies
/// there (base-2 strong pseudoprimes are vanishingly rare: the first is
/// 2047, and their density keeps falling), so the random-witness loop
/// with its per-base setup runs almost exclusively on actual primes.
/// Returns `(probably_prime, rejected_by_base2)`.
fn mr_probable_prime(n: &Ubig, rounds: usize, rng: &mut dyn RngCore64) -> (bool, bool) {
    let n_minus_1 = n.sub(&Ubig::one());
    let (d, r) = mr_decompose(&n_minus_1);
    // One Montgomery context serves every witness (n is odd here).
    // `None` under TLSFOE_SCHOOLBOOK, the seed-equivalence perf ablation.
    let ctx = (!crate::schoolbook_forced()).then(|| MontgomeryCtx::new(n).expect("odd modulus"));
    if mr_composite_witness(&Ubig::from_u64(2), &d, r, n, &n_minus_1, ctx.as_ref()) {
        return (false, true);
    }
    let byte_len = n.bit_len().div_ceil(8);
    for _ in 0..rounds {
        // Random base a in [2, n-2].
        let a = loop {
            let mut bytes = vec![0u8; byte_len];
            rng.fill_bytes(&mut bytes);
            let a = Ubig::from_bytes_be(&bytes).rem(&n_minus_1).expect("nonzero divisor");
            if a > Ubig::one() {
                break a;
            }
        };
        if mr_composite_witness(&a, &d, r, n, &n_minus_1, ctx.as_ref()) {
            return (false, false);
        }
    }
    (true, false)
}

/// Miller–Rabin probabilistic primality test: batched small-prime trial
/// division, a fixed base-2 round, then `rounds` random bases.
pub fn is_probable_prime(n: &Ubig, rounds: usize, rng: &mut dyn RngCore64) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = Ubig::from_u64(2);
    if n == &two {
        return true;
    }
    if !n.is_odd() {
        return false;
    }
    // Trial division by small primes via batched prime products. For n
    // itself within the small-prime range the factor found is n, which is
    // prime — hence the membership check instead.
    if n <= &Ubig::from_u64(*FIRST_PRIMES.last().expect("FIRST_PRIMES is a nonempty const")) {
        return FIRST_PRIMES.contains(&n.limbs()[0]); // single-limb by the guard
    }
    if has_small_factor(n) {
        return false;
    }
    mr_probable_prime(n, rounds, rng).0
}

/// Cumulative [`gen_prime`] search statistics for this process.
///
/// The sieve's whole point is the ratio between these counters: most odd
/// candidates must die in the `u64` residue walk (`candidates` vs
/// `mr_runs`), and most sieve survivors that are composite must die in
/// the fixed base-2 round (`base2_rejects`) without touching the
/// random-witness machinery. `exp_perf` reports them and ROADMAP records
/// them per PR.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeygenStats {
    /// Odd candidates examined by the incremental sieve.
    pub candidates: u64,
    /// Candidates that survived the small-prime sieve (each costs one
    /// Miller–Rabin run, starting with the fixed base-2 round).
    pub mr_runs: u64,
    /// Sieve survivors rejected by the base-2 round alone.
    pub base2_rejects: u64,
    /// Primes returned.
    pub primes: u64,
}

/// Process-wide count of RSA signatures produced (every
/// [`RsaKeyPair::sign_with`] call). `exp_perf`'s mint series divides the
/// delta across a minting run by the chains minted to report
/// signatures-per-mint — the unit cost the substitute prewarm amortizes.
static SIGNATURES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Snapshot of the process-wide signature counter.
pub fn signature_count() -> u64 {
    SIGNATURES.load(std::sync::atomic::Ordering::Relaxed)
}

static KG_CANDIDATES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static KG_MR_RUNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static KG_BASE2_REJECTS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static KG_PRIMES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Snapshot of the process-wide [`gen_prime`] counters.
pub fn keygen_stats() -> KeygenStats {
    use std::sync::atomic::Ordering::Relaxed;
    KeygenStats {
        candidates: KG_CANDIDATES.load(Relaxed),
        mr_runs: KG_MR_RUNS.load(Relaxed),
        base2_rejects: KG_BASE2_REJECTS.load(Relaxed),
        primes: KG_PRIMES.load(Relaxed),
    }
}

/// Odd steps examined per random start before redrawing. The expected
/// prime gap among odd `bits`-bit numbers is ~`bits·ln2/2` (≈ 710/2 at
/// 1024 bits), so 2¹⁴ steps make a windowless redraw vanishingly rare
/// while keeping each interval short enough that the search still lands
/// near its uniformly drawn start.
const SIEVE_ODD_STEPS: usize = 1 << 14;

/// Exclusive bound on the sieving primes. Much larger than the 60-entry
/// trial-division table: each extra prime `p` removes a `1/p` slice of
/// candidates *before* they cost a Miller–Rabin ladder, and with the
/// window sieve a prime's per-start cost is `O(window/p)` bit marks —
/// so big tables are nearly free here, while they would be useless in
/// the old per-candidate trial division. Sieving to 2¹⁶ (6542 primes)
/// passes ~15% of odd candidates to Miller–Rabin (measured:
/// `sieve_mr_runs_per_prime / sieve_candidates_per_prime` in
/// `BENCH_crypto.json`; the Mertens-theorem steady-state is ~10%, but a
/// search stops at its prime, which skews the observed mix) vs ~20% at
/// the old bound of 283.
const SIEVE_PRIME_BOUND: usize = 1 << 16;

/// The sieving primes (odd primes below [`SIEVE_PRIME_BOUND`]) together
/// with consecutive runs packed greedily into `u64` products: residues
/// of a bigint start are taken once per *product* (one multi-limb by
/// `u64` remainder) and expanded to per-prime residues with `u64`
/// arithmetic, cutting the bigint divisions per start ~3×.
struct SieveTable {
    primes: Vec<u32>,
    /// `(product, range into primes)` — every prime in `range` divides
    /// `product`, and `product` fits a `u64`.
    products: Vec<(u64, core::ops::Range<usize>)>,
}

fn sieve_table() -> &'static SieveTable {
    static TABLE: std::sync::OnceLock<SieveTable> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        // Sieve of Eratosthenes over the odd numbers below the bound.
        let mut is_composite = vec![false; SIEVE_PRIME_BOUND];
        let mut primes = Vec::new();
        for n in (3..SIEVE_PRIME_BOUND).step_by(2) {
            if is_composite[n] {
                continue;
            }
            primes.push(n as u32);
            for multiple in (n * n..SIEVE_PRIME_BOUND).step_by(2 * n) {
                is_composite[multiple] = true;
            }
        }
        let mut products = Vec::new();
        let mut acc: u64 = 1;
        let mut run_start = 0usize;
        for (i, &p) in primes.iter().enumerate() {
            match acc.checked_mul(p as u64) {
                Some(next) => acc = next,
                None => {
                    products.push((acc, run_start..i));
                    acc = p as u64;
                    run_start = i;
                }
            }
        }
        products.push((acc, run_start..primes.len()));
        SieveTable { primes, products }
    })
}

/// Generate a random prime with exactly `bits` bits.
///
/// Incremental sieved search: draw one random odd start per attempt
/// (top two bits forced, as before, so `p·q` has full size), then sieve
/// the window of [`SIEVE_ODD_STEPS`] odd candidates `start + 2j` in one
/// pass — the residue of `start` modulo each packed prime product is
/// taken once, expanded to per-prime residues, and each prime marks its
/// multiples through the window with cheap `u64` strides. Only unmarked
/// candidates pay for bigint work: one add to materialize the
/// candidate, then a Miller–Rabin run opened by the fixed base-2
/// doubling ladder. The draw-test-discard loop this replaces paid
/// trial division plus, for survivors, a random-witness setup per
/// candidate, and re-randomized every draw so no residue work could be
/// shared.
///
/// Deterministic per RNG state, like every generation routine here: the
/// population key cache relies on `(seed, bits) → key` being pure.
pub fn gen_prime(bits: usize, rng: &mut dyn RngCore64) -> Result<Ubig, CryptoError> {
    assert!(bits >= 16, "prime sizes below 16 bits are not supported");
    let byte_len = bits.div_ceil(8);
    // MR round counts sized for *random* candidates (which these are):
    // by the Damgård–Landrock–Pomerance average-case bounds, 8 rounds on
    // random 512-bit candidates leave error far below 2⁻¹⁰⁰ (worst-case
    // adversarial 4⁻ᵗ analysis does not apply to sieve output), matching
    // FIPS 186-4 Table C.2's regime for RSA prime generation. Below 512
    // bits — toy sizes reachable only from tests — stay generous.
    let rounds = if bits >= 1024 {
        5
    } else if bits >= 512 {
        8
    } else {
        16
    };
    let table = sieve_table();
    // Sieving primes must stay below the candidates (which are ≥
    // 2^(bits-1)); only bits = 16 can collide with the 2¹⁶ table bound.
    let max_sieve_prime = if bits > 16 { u64::MAX } else { 1u64 << (bits - 1) };
    let mut stats = KeygenStats::default();
    let mut found = None;
    let mut composite = vec![false; SIEVE_ODD_STEPS];
    'attempt: for _ in 0..1024 {
        let mut bytes = vec![0u8; byte_len];
        rng.fill_bytes(&mut bytes);
        let mut start = Ubig::from_bytes_be(&bytes);
        // Force exact bit length: clear any excess high bits, set the top
        // two bits (so p*q has full size) and the low bit (odd).
        start = start.rem(&Ubig::one().shl(bits)).expect("nonzero");
        start.set_bit(bits - 1);
        start.set_bit(bits - 2);
        start.set_bit(0);
        // Mark every window slot a sieving prime divides: slot j holds
        // start + 2j, so p strikes j ≡ -start·2⁻¹ ≡ (p - r)·(p+1)/2
        // (mod p), where r = start mod p comes from the packed-product
        // residue at u64 cost.
        composite.fill(false);
        for (product, range) in &table.products {
            let product_residue = start.rem_u64(*product);
            for &p in &table.primes[range.clone()] {
                let p = p as u64;
                if p >= max_sieve_prime {
                    break; // primes are sorted; nothing further applies
                }
                let r = product_residue % p;
                let inv2 = p.div_ceil(2); // 2⁻¹ mod p for odd p
                let mut j = (((p - r) % p) * inv2 % p) as usize;
                while j < SIEVE_ODD_STEPS {
                    composite[j] = true;
                    j += p as usize;
                }
            }
        }
        for (j, &is_composite) in composite.iter().enumerate() {
            stats.candidates += 1;
            if is_composite {
                continue; // a sieving prime divides this candidate
            }
            let candidate = start.add(&Ubig::from_u64(j as u64 * 2));
            if candidate.bit_len() != bits {
                continue 'attempt; // walked off the top of the interval
            }
            stats.mr_runs += 1;
            let (probably_prime, base2_reject) = mr_probable_prime(&candidate, rounds, rng);
            stats.base2_rejects += base2_reject as u64;
            if probably_prime {
                stats.primes += 1;
                found = Some(candidate);
                break 'attempt;
            }
        }
    }
    use std::sync::atomic::Ordering::Relaxed;
    KG_CANDIDATES.fetch_add(stats.candidates, Relaxed);
    KG_MR_RUNS.fetch_add(stats.mr_runs, Relaxed);
    KG_BASE2_REJECTS.fetch_add(stats.base2_rejects, Relaxed);
    KG_PRIMES.fetch_add(stats.primes, Relaxed);
    found.ok_or(CryptoError::PrimeGenFailed)
}

impl RsaKeyPair {
    /// Generate an RSA key pair with a `bits`-bit modulus and `e = 65537`.
    ///
    /// Deterministic given the RNG state — the population simulator relies
    /// on this to give each interception product a stable root key.
    pub fn generate(bits: usize, rng: &mut dyn RngCore64) -> Result<Self, CryptoError> {
        assert!(bits >= 256, "modulus sizes below 256 bits are not supported");
        let e = Ubig::from_u64(65537);
        loop {
            let p = gen_prime(bits / 2, rng)?;
            let q = gen_prime(bits - bits / 2, rng)?;
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let phi = p.sub(&Ubig::one()).mul(&q.sub(&Ubig::one()));
            let d = match e.modinv(&phi) {
                Ok(d) => d,
                Err(_) => continue, // e not coprime with phi; rare — retry
            };
            let crt = Some(RsaCrt::new(&p, &q, &d)?);
            return Ok(RsaKeyPair { public: RsaPublicKey { n, e }, d, p, q, crt });
        }
    }

    /// Modulus size in bits (the paper's "public key size").
    pub fn bits(&self) -> usize {
        self.public.n.bit_len()
    }

    /// Sign `message` with RSASSA-PKCS1-v1_5 using `alg` as digest.
    ///
    /// Returns the signature as a big-endian byte string exactly as long
    /// as the modulus. Keys with precomputed [`RsaCrt`] material (all
    /// generated keys) take the CRT fast path; the result is byte-
    /// identical either way. Working memory is the thread-local
    /// [`ModpowScratch`], so bulk signing (certificate minting) performs
    /// no per-signature ladder allocations; callers that own a workspace
    /// can thread it explicitly via [`RsaKeyPair::sign_with`].
    pub fn sign(&self, alg: HashAlg, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        with_thread_scratch(|scratch| self.sign_with(alg, message, scratch))
    }

    /// [`sign`](Self::sign) against caller-owned working memory.
    pub fn sign_with(
        &self,
        alg: HashAlg,
        message: &[u8],
        scratch: &mut ModpowScratch,
    ) -> Result<Vec<u8>, CryptoError> {
        SIGNATURES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let k = self.public.n.bit_len().div_ceil(8);
        let em = pkcs1v15_encode(alg, message, k)?;
        let m = Ubig::from_bytes_be(&em);
        if m >= self.public.n {
            return Err(CryptoError::MessageTooLong);
        }
        let s = match &self.crt {
            // The TLSFOE_SCHOOLBOOK check keeps the seed's full-size
            // exponentiation reachable for end-to-end perf ablations.
            Some(crt) if !crate::schoolbook_forced() => crt.private_exp_with(&m, scratch)?,
            // Non-CRT fallback: same dispatch as `Ubig::modpow` (shared
            // ctx cache for odd moduli, schoolbook otherwise) but driven
            // through the caller's scratch — going through `Ubig::modpow`
            // here would re-enter the thread-local workspace and fall
            // back to a fresh allocation per signature.
            _ if self.public.n.is_odd() && !crate::schoolbook_forced() => {
                crate::ctxcache::shared_ctx_cache()
                    .get(&self.public.n)?
                    .modpow_with(&m, &self.d, scratch)?
            }
            _ => m.modpow_schoolbook(&self.d, &self.public.n)?,
        };
        s.to_bytes_be_padded(k).ok_or(CryptoError::MessageTooLong)
    }

    /// Recompute and attach the CRT acceleration material (for keys
    /// assembled from raw parts rather than [`RsaKeyPair::generate`]).
    pub fn precompute_crt(&mut self) -> Result<(), CryptoError> {
        self.crt = Some(RsaCrt::new(&self.p, &self.q, &self.d)?);
        Ok(())
    }
}

impl RsaPublicKey {
    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Verify an RSASSA-PKCS1-v1_5 signature over `message`.
    ///
    /// The exponentiation rides the process-wide
    /// [`crate::ctxcache::shared_ctx_cache`], so verifying many
    /// signatures against the same key (chain validation, root-store
    /// anchor search) re-derives the per-modulus Montgomery constants
    /// once rather than per call. Even moduli and the
    /// `TLSFOE_SCHOOLBOOK` ablation fall back to [`Ubig::modpow`]'s
    /// uncached dispatch.
    pub fn verify(
        &self,
        alg: HashAlg,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let k = self.n.bit_len().div_ceil(8);
        if signature.len() != k {
            return Err(CryptoError::BadSignature);
        }
        let s = Ubig::from_bytes_be(signature);
        if s >= self.n {
            return Err(CryptoError::BadSignature);
        }
        let m = if self.n.is_odd() && !crate::schoolbook_forced() {
            crate::ctxcache::shared_ctx_cache().get(&self.n)?.modpow(&s, &self.e)?
        } else {
            s.modpow(&self.e, &self.n)?
        };
        let em = m.to_bytes_be_padded(k).ok_or(CryptoError::BadSignature)?;
        let expected = pkcs1v15_encode(alg, message, k)?;
        if em == expected {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 0x01 FF..FF 0x00 DigestInfo || digest`.
fn pkcs1v15_encode(alg: HashAlg, message: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = alg.digest(message);
    let prefix = digest_info_prefix(alg);
    let t_len = prefix.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::InvalidKey("modulus too small for digest"));
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(&digest);
    Ok(em)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::drbg::Drbg;

    #[test]
    fn small_primes_recognized() {
        let mut rng = Drbg::new(1);
        for p in [2u64, 3, 5, 7, 11, 13, 257, 65537, 1_000_000_007] {
            assert!(is_probable_prime(&Ubig::from_u64(p), 16, &mut rng), "{p} should be prime");
        }
        for c in [0u64, 1, 4, 9, 15, 21, 255, 65535, 1_000_000_008] {
            assert!(
                !is_probable_prime(&Ubig::from_u64(c), 16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // 561, 1105, 1729 are Carmichael numbers (fool Fermat, not MR).
        let mut rng = Drbg::new(2);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(
                !is_probable_prime(&Ubig::from_u64(c), 16, &mut rng),
                "Carmichael {c} must be rejected"
            );
        }
    }

    #[test]
    fn gen_prime_exact_bits() {
        // 16 and 17 bits straddle the sieve-table bound of 2¹⁶: at 16
        // bits the candidates overlap the sieving-prime range, so the
        // prime cap (`max_sieve_prime`) is what keeps the sieve from
        // striking a candidate equal to a table prime.
        let mut rng = Drbg::new(3);
        for bits in [16usize, 17, 64, 128, 256] {
            let p = gen_prime(bits, &mut rng).unwrap();
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, 16, &mut rng), "{p:?} must be prime");
        }
    }

    #[test]
    fn base2_strong_pseudoprimes_still_rejected() {
        // These pass the fixed base-2 opening round (they are strong
        // pseudoprimes base 2) — the random witnesses behind it must
        // still reject them.
        let mut rng = Drbg::new(27);
        for c in [2047u64, 3277, 4033, 4681, 8321, 15841, 29341, 42799, 49141] {
            assert!(!is_probable_prime(&Ubig::from_u64(c), 16, &mut rng), "{c} is composite");
        }
    }

    #[test]
    fn sieve_stats_accumulate_sensibly() {
        let before = keygen_stats();
        gen_prime(128, &mut Drbg::new(0x57A7)).unwrap();
        gen_prime(192, &mut Drbg::new(0x57A8)).unwrap();
        let after = keygen_stats();
        let candidates = after.candidates - before.candidates;
        let mr_runs = after.mr_runs - before.mr_runs;
        let primes = after.primes - before.primes;
        // ≥, not ==: the counters are process-wide and sibling tests
        // generate keys concurrently; every invariant below also holds
        // for sums of per-call stats.
        assert!(primes >= 2);
        assert!(mr_runs >= primes, "each prime costs at least one MR run");
        assert!(candidates >= mr_runs, "the sieve can only shrink the MR load");
        // The sieve's reason to exist: most candidates never reach MR.
        // With 60 sieving primes ~1−∏(1−1/p) ≈ 82% of odd numbers are
        // filtered; require a conservative majority to catch a sieve
        // that silently stops filtering.
        assert!(
            mr_runs * 3 <= candidates,
            "sieve passed {mr_runs} of {candidates} candidates to Miller–Rabin"
        );
    }

    #[test]
    fn keygen_sign_verify_roundtrip() {
        let mut rng = Drbg::new(4);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        assert_eq!(key.bits(), 512);
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256] {
            let sig = key.sign(alg, b"hello certificate").unwrap();
            assert_eq!(sig.len(), 64);
            key.public.verify(alg, b"hello certificate", &sig).unwrap();
            // Tampered message fails.
            assert_eq!(
                key.public.verify(alg, b"hello certificatf", &sig),
                Err(CryptoError::BadSignature)
            );
        }
    }

    #[test]
    fn tampered_signature_fails() {
        let mut rng = Drbg::new(5);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        let mut sig = key.sign(HashAlg::Sha256, b"msg").unwrap();
        sig[10] ^= 0x01;
        assert_eq!(
            key.public.verify(HashAlg::Sha256, b"msg", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = Drbg::new(6);
        let key1 = RsaKeyPair::generate(512, &mut rng).unwrap();
        let key2 = RsaKeyPair::generate(512, &mut rng).unwrap();
        let sig = key1.sign(HashAlg::Sha1, b"msg").unwrap();
        assert!(key2.public.verify(HashAlg::Sha1, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_hash_alg_fails() {
        let mut rng = Drbg::new(7);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        let sig = key.sign(HashAlg::Sha1, b"msg").unwrap();
        assert!(key.public.verify(HashAlg::Sha256, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_length_signature_rejected() {
        let mut rng = Drbg::new(8);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        assert!(key.public.verify(HashAlg::Sha1, b"msg", &[0u8; 63]).is_err());
        assert!(key.public.verify(HashAlg::Sha1, b"msg", &[]).is_err());
    }

    #[test]
    fn crt_and_direct_signatures_byte_identical() {
        let mut rng = Drbg::new(20);
        for bits in [512usize, 768] {
            let key = RsaKeyPair::generate(bits, &mut rng).unwrap();
            assert!(key.crt.is_some(), "generate must precompute CRT");
            let mut slow = key.clone();
            slow.crt = None;
            for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256] {
                let fast_sig = key.sign(alg, b"garner recombination").unwrap();
                let slow_sig = slow.sign(alg, b"garner recombination").unwrap();
                assert_eq!(fast_sig, slow_sig, "bits={bits} alg={alg:?}");
                key.public.verify(alg, b"garner recombination", &fast_sig).unwrap();
            }
        }
    }

    #[test]
    fn scratch_and_thread_local_signatures_byte_identical() {
        // The allocation-free plumbing (explicit scratch, thread-local
        // scratch, plan-driven CRT ladders) must not change a single
        // signature byte — including when one workspace is shared across
        // keys of different sizes.
        let mut rng = Drbg::new(23);
        let k512 = RsaKeyPair::generate(512, &mut rng).unwrap();
        let k768 = RsaKeyPair::generate(768, &mut rng).unwrap();
        let mut scratch = ModpowScratch::new();
        for key in [&k512, &k768] {
            assert_eq!(key.crt.as_ref().unwrap().window_bits(), CRT_WINDOW_BITS);
            for alg in [HashAlg::Sha1, HashAlg::Sha256] {
                let via_thread = key.sign(alg, b"scratch equivalence").unwrap();
                let via_scratch = key.sign_with(alg, b"scratch equivalence", &mut scratch).unwrap();
                assert_eq!(via_thread, via_scratch);
                key.public.verify(alg, b"scratch equivalence", &via_thread).unwrap();
            }
        }
    }

    #[test]
    fn signature_counter_counts_signs() {
        let mut rng = Drbg::new(24);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        let before = signature_count();
        key.sign(HashAlg::Sha1, b"one").unwrap();
        key.sign(HashAlg::Sha1, b"two").unwrap();
        let after = signature_count();
        // ≥, not ==: the counter is process-wide and sibling tests sign
        // concurrently.
        assert!(after - before >= 2, "counter moved {} for 2 signs", after - before);
    }

    #[test]
    fn precompute_crt_restores_fast_path() {
        let mut rng = Drbg::new(21);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        let mut stripped = key.clone();
        stripped.crt = None;
        stripped.precompute_crt().unwrap();
        assert_eq!(
            stripped.sign(HashAlg::Sha1, b"m").unwrap(),
            key.sign(HashAlg::Sha1, b"m").unwrap()
        );
    }

    #[test]
    fn small_factor_batching_matches_direct_division() {
        // The batched gcd trial division must agree with dividing by each
        // prime individually on a mix of smooth and rough numbers.
        let mut rng = Drbg::new(22);
        for _ in 0..200 {
            let mut bytes = [0u8; 24];
            rng.fill_bytes(&mut bytes);
            let mut n = Ubig::from_bytes_be(&bytes);
            n.set_bit(0); // odd, as on the is_probable_prime path
            let direct = FIRST_PRIMES.iter().any(|&p| n.rem_u64(p) == 0);
            assert_eq!(has_small_factor(&n), direct, "n={n:?}");
        }
    }

    #[test]
    fn rsa_identity_on_raw_values() {
        // m^(e*d) ≡ m (mod n) for a handful of raw representatives.
        let mut rng = Drbg::new(9);
        let key = RsaKeyPair::generate(256, &mut rng).unwrap();
        for v in [2u64, 3, 12345, 0xdead_beef] {
            let m = Ubig::from_u64(v);
            let c = m.modpow(&key.public.e, &key.public.n).unwrap();
            let back = c.modpow(&key.d, &key.public.n).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn deterministic_keygen() {
        let k1 = RsaKeyPair::generate(256, &mut Drbg::new(42)).unwrap();
        let k2 = RsaKeyPair::generate(256, &mut Drbg::new(42)).unwrap();
        assert_eq!(k1.public, k2.public);
    }

    #[test]
    fn modulus_too_small_for_digest() {
        let mut rng = Drbg::new(10);
        let key = RsaKeyPair::generate(256, &mut rng).unwrap();
        // SHA-256 DigestInfo (51 bytes) + 11 > 32-byte modulus.
        assert!(key.sign(HashAlg::Sha256, b"x").is_err());
        // MD5 (34 bytes + 11 = 45 > 32) also too big; SHA-1 too.
        assert!(key.sign(HashAlg::Sha1, b"x").is_err());
    }
}
