//! RSA key generation and PKCS#1 v1.5 signatures.
//!
//! The paper's certificate corpus contains RSA keys of 512, 1024, 2048 and
//! even 2432 bits (§5.2). Key generation here supports any size ≥ 256 bits
//! so the negligence analyzer can be exercised against real signatures at
//! every size the paper observed — including the single shared 512-bit key
//! of the `IopFailZeroAccessCreate` malware.
//!
//! Signatures are RSASSA-PKCS1-v1_5 (RFC 8017 §8.2) with proper DER
//! `DigestInfo` prefixes for MD5, SHA-1 and SHA-256.

use crate::bigint::Ubig;
use crate::drbg::RngCore64;
use crate::{CryptoError, HashAlg};

/// Public RSA key: modulus and exponent.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    /// Modulus `n`.
    pub n: Ubig,
    /// Public exponent `e` (65537 for all generated keys).
    pub e: Ubig,
}

/// RSA key pair (public part plus private exponent and factors).
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    /// The public half.
    pub public: RsaPublicKey,
    /// Private exponent `d`.
    pub d: Ubig,
    /// Prime factor `p`.
    pub p: Ubig,
    /// Prime factor `q`.
    pub q: Ubig,
}

/// DER DigestInfo prefixes per RFC 8017 §9.2 note 1.
fn digest_info_prefix(alg: HashAlg) -> &'static [u8] {
    match alg {
        HashAlg::Md5 => &[
            0x30, 0x20, 0x30, 0x0c, 0x06, 0x08, 0x2a, 0x86, 0x48, 0x86, 0xf7, 0x0d, 0x02, 0x05,
            0x05, 0x00, 0x04, 0x10,
        ],
        HashAlg::Sha1 => &[
            0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00, 0x04,
            0x14,
        ],
        HashAlg::Sha256 => &[
            0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
            0x01, 0x05, 0x00, 0x04, 0x20,
        ],
    }
}

const FIRST_PRIMES: [u64; 60] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
];

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
pub fn is_probable_prime(n: &Ubig, rounds: usize, rng: &mut dyn RngCore64) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = Ubig::from_u64(2);
    if n == &two {
        return true;
    }
    if !n.is_odd() {
        return false;
    }
    // Trial division by small primes.
    for &p in &FIRST_PRIMES {
        let pb = Ubig::from_u64(p);
        if n == &pb {
            return true;
        }
        if n.rem(&pb).expect("nonzero divisor").is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^r with d odd.
    let n_minus_1 = n.sub(&Ubig::one());
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while !d.is_odd() {
        d = d.shr(1);
        r += 1;
    }
    let byte_len = (n.bit_len() + 7) / 8;
    'witness: for _ in 0..rounds {
        // Random base a in [2, n-2].
        let a = loop {
            let mut bytes = vec![0u8; byte_len];
            rng.fill_bytes(&mut bytes);
            let a = Ubig::from_bytes_be(&bytes)
                .rem(&n_minus_1)
                .expect("nonzero divisor");
            if a > Ubig::one() {
                break a;
            }
        };
        let mut x = a.modpow(&d, n).expect("nonzero modulus");
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..r.saturating_sub(1) {
            x = x.mulmod(&x, n).expect("nonzero modulus");
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random prime with exactly `bits` bits.
pub fn gen_prime(bits: usize, rng: &mut dyn RngCore64) -> Result<Ubig, CryptoError> {
    assert!(bits >= 16, "prime sizes below 16 bits are not supported");
    let byte_len = (bits + 7) / 8;
    // MR round count per FIPS 186-4-ish guidance; generous for small sizes.
    let rounds = if bits >= 1024 { 5 } else { 16 };
    for _ in 0..100_000 {
        let mut bytes = vec![0u8; byte_len];
        rng.fill_bytes(&mut bytes);
        let mut candidate = Ubig::from_bytes_be(&bytes);
        // Force exact bit length: clear any excess high bits, set the top
        // two bits (so p*q has full size) and the low bit (odd).
        candidate = candidate.rem(&Ubig::one().shl(bits)).expect("nonzero");
        candidate.set_bit(bits - 1);
        candidate.set_bit(bits - 2);
        candidate.set_bit(0);
        if is_probable_prime(&candidate, rounds, rng) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::PrimeGenFailed)
}

impl RsaKeyPair {
    /// Generate an RSA key pair with a `bits`-bit modulus and `e = 65537`.
    ///
    /// Deterministic given the RNG state — the population simulator relies
    /// on this to give each interception product a stable root key.
    pub fn generate(bits: usize, rng: &mut dyn RngCore64) -> Result<Self, CryptoError> {
        assert!(bits >= 256, "modulus sizes below 256 bits are not supported");
        let e = Ubig::from_u64(65537);
        loop {
            let p = gen_prime(bits / 2, rng)?;
            let q = gen_prime(bits - bits / 2, rng)?;
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let phi = p.sub(&Ubig::one()).mul(&q.sub(&Ubig::one()));
            let d = match e.modinv(&phi) {
                Ok(d) => d,
                Err(_) => continue, // e not coprime with phi; rare — retry
            };
            return Ok(RsaKeyPair {
                public: RsaPublicKey { n, e },
                d,
                p,
                q,
            });
        }
    }

    /// Modulus size in bits (the paper's "public key size").
    pub fn bits(&self) -> usize {
        self.public.n.bit_len()
    }

    /// Sign `message` with RSASSA-PKCS1-v1_5 using `alg` as digest.
    ///
    /// Returns the signature as a big-endian byte string exactly as long
    /// as the modulus.
    pub fn sign(&self, alg: HashAlg, message: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let k = (self.public.n.bit_len() + 7) / 8;
        let em = pkcs1v15_encode(alg, message, k)?;
        let m = Ubig::from_bytes_be(&em);
        if m >= self.public.n {
            return Err(CryptoError::MessageTooLong);
        }
        let s = m.modpow(&self.d, &self.public.n)?;
        s.to_bytes_be_padded(k).ok_or(CryptoError::MessageTooLong)
    }
}

impl RsaPublicKey {
    /// Modulus size in bits.
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// Verify an RSASSA-PKCS1-v1_5 signature over `message`.
    pub fn verify(
        &self,
        alg: HashAlg,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        let k = (self.n.bit_len() + 7) / 8;
        if signature.len() != k {
            return Err(CryptoError::BadSignature);
        }
        let s = Ubig::from_bytes_be(signature);
        if s >= self.n {
            return Err(CryptoError::BadSignature);
        }
        let m = s.modpow(&self.e, &self.n)?;
        let em = m
            .to_bytes_be_padded(k)
            .ok_or(CryptoError::BadSignature)?;
        let expected = pkcs1v15_encode(alg, message, k)?;
        if em == expected {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

/// EMSA-PKCS1-v1_5 encoding: `0x00 0x01 FF..FF 0x00 DigestInfo || digest`.
fn pkcs1v15_encode(alg: HashAlg, message: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let digest = alg.digest(message);
    let prefix = digest_info_prefix(alg);
    let t_len = prefix.len() + digest.len();
    if k < t_len + 11 {
        return Err(CryptoError::InvalidKey("modulus too small for digest"));
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(prefix);
    em.extend_from_slice(&digest);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::Drbg;

    #[test]
    fn small_primes_recognized() {
        let mut rng = Drbg::new(1);
        for p in [2u64, 3, 5, 7, 11, 13, 257, 65537, 1_000_000_007] {
            assert!(
                is_probable_prime(&Ubig::from_u64(p), 16, &mut rng),
                "{p} should be prime"
            );
        }
        for c in [0u64, 1, 4, 9, 15, 21, 255, 65535, 1_000_000_008] {
            assert!(
                !is_probable_prime(&Ubig::from_u64(c), 16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // 561, 1105, 1729 are Carmichael numbers (fool Fermat, not MR).
        let mut rng = Drbg::new(2);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(
                !is_probable_prime(&Ubig::from_u64(c), 16, &mut rng),
                "Carmichael {c} must be rejected"
            );
        }
    }

    #[test]
    fn gen_prime_exact_bits() {
        let mut rng = Drbg::new(3);
        for bits in [64usize, 128, 256] {
            let p = gen_prime(bits, &mut rng).unwrap();
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
        }
    }

    #[test]
    fn keygen_sign_verify_roundtrip() {
        let mut rng = Drbg::new(4);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        assert_eq!(key.bits(), 512);
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256] {
            let sig = key.sign(alg, b"hello certificate").unwrap();
            assert_eq!(sig.len(), 64);
            key.public.verify(alg, b"hello certificate", &sig).unwrap();
            // Tampered message fails.
            assert_eq!(
                key.public.verify(alg, b"hello certificatf", &sig),
                Err(CryptoError::BadSignature)
            );
        }
    }

    #[test]
    fn tampered_signature_fails() {
        let mut rng = Drbg::new(5);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        let mut sig = key.sign(HashAlg::Sha256, b"msg").unwrap();
        sig[10] ^= 0x01;
        assert_eq!(
            key.public.verify(HashAlg::Sha256, b"msg", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = Drbg::new(6);
        let key1 = RsaKeyPair::generate(512, &mut rng).unwrap();
        let key2 = RsaKeyPair::generate(512, &mut rng).unwrap();
        let sig = key1.sign(HashAlg::Sha1, b"msg").unwrap();
        assert!(key2.public.verify(HashAlg::Sha1, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_hash_alg_fails() {
        let mut rng = Drbg::new(7);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        let sig = key.sign(HashAlg::Sha1, b"msg").unwrap();
        assert!(key.public.verify(HashAlg::Sha256, b"msg", &sig).is_err());
    }

    #[test]
    fn wrong_length_signature_rejected() {
        let mut rng = Drbg::new(8);
        let key = RsaKeyPair::generate(512, &mut rng).unwrap();
        assert!(key.public.verify(HashAlg::Sha1, b"msg", &[0u8; 63]).is_err());
        assert!(key.public.verify(HashAlg::Sha1, b"msg", &[]).is_err());
    }

    #[test]
    fn rsa_identity_on_raw_values() {
        // m^(e*d) ≡ m (mod n) for a handful of raw representatives.
        let mut rng = Drbg::new(9);
        let key = RsaKeyPair::generate(256, &mut rng).unwrap();
        for v in [2u64, 3, 12345, 0xdead_beef] {
            let m = Ubig::from_u64(v);
            let c = m.modpow(&key.public.e, &key.public.n).unwrap();
            let back = c.modpow(&key.d, &key.public.n).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn deterministic_keygen() {
        let k1 = RsaKeyPair::generate(256, &mut Drbg::new(42)).unwrap();
        let k2 = RsaKeyPair::generate(256, &mut Drbg::new(42)).unwrap();
        assert_eq!(k1.public, k2.public);
    }

    #[test]
    fn modulus_too_small_for_digest() {
        let mut rng = Drbg::new(10);
        let key = RsaKeyPair::generate(256, &mut rng).unwrap();
        // SHA-256 DigestInfo (51 bytes) + 11 > 32-byte modulus.
        assert!(key.sign(HashAlg::Sha256, b"x").is_err());
        // MD5 (34 bytes + 11 = 45 > 32) also too big; SHA-1 too.
        assert!(key.sign(HashAlg::Sha1, b"x").is_err());
    }
}
