//! SHA-1 (FIPS 180-4).
//!
//! SHA-1 was the dominant certificate signature hash in 2014, the year of
//! both measurement studies; almost every substitute certificate in the
//! corpus is `sha1WithRSAEncryption`.

/// Streaming SHA-1 context.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a fresh context.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and return the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunks_exact(4) yields 4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a827999),
                1 => (b ^ c ^ d, 0x6ed9eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut ctx = Sha1::new();
    ctx.update(data);
    ctx.finalize()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / RFC 3174 test vectors.
    #[test]
    fn known_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex(&sha1(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 253) as u8).collect();
        let expected = sha1(&data);
        for chunk_size in [1usize, 7, 63, 64, 65, 1000] {
            let mut ctx = Sha1::new();
            for chunk in data.chunks(chunk_size) {
                ctx.update(chunk);
            }
            assert_eq!(ctx.finalize(), expected, "chunk size {chunk_size}");
        }
    }
}
