//! # tlsfoe-crypto
//!
//! From-scratch cryptographic substrate for the `tlsfoe` workspace.
//!
//! The paper's measurement pipeline observes real X.509 certificates with
//! real RSA signatures (2048-bit DigiCert-issued originals, 512/1024-bit
//! substitutes minted by interception products, MD5- and SHA-signed).
//! To exercise the same code paths this crate implements, with no external
//! dependencies:
//!
//! * [`bigint`] — arbitrary-precision unsigned integers (u64 limbs) with
//!   Knuth Algorithm-D division and modular exponentiation,
//! * [`montgomery`] — division-free Montgomery-form arithmetic
//!   ([`MontgomeryCtx`]: fused-CIOS multiplication, fixed 4-bit-window
//!   exponentiation, short-exponent fast path) that [`Ubig::modpow`]
//!   rides for every odd modulus,
//! * [`md5`], [`sha1`], [`sha256`] — the three digest algorithms that appear
//!   in the paper's certificate corpus,
//! * [`hmac`] — HMAC over any of the digests (used by the DRBG),
//! * [`rsa`] — RSA key generation (Miller–Rabin with batched small-prime
//!   trial division), PKCS#1 v1.5 signing and verification with proper
//!   DigestInfo encoding; private keys carry precomputed [`RsaCrt`]
//!   material so signing uses half-size CRT exponentiations,
//! * [`drbg`] — a deterministic random bit generator so that every
//!   simulation in the workspace is reproducible from a single seed.
//!
//! ## Hot-path performance
//!
//! The Montgomery + CRT rework of this crate sped up every experiment
//! binary end to end. Measured medians (release, one core; see
//! `exp_perf`, which regenerates `BENCH_crypto.json`):
//!
//! | operation (1024-bit) | seed (schoolbook) | now | speedup |
//! |----------------------|-------------------|-----|---------|
//! | private-exponent modpow | 1.63 ms | 513 µs (Montgomery) | 3.2× |
//! | RSA sign | 1.63 ms | 152 µs (Montgomery + CRT) | ~10.7× |
//! | RSA verify (e = 65537) | ~30 µs | 10 µs | ~3× |
//!
//! At 512/2048 bits the sign speedups are ~13× and ~11× respectively.
//! End to end, `exp_all` (every experiment binary at default
//! `TLSFOE_SCALE`) drops from 124 s to 63 s — verified with the
//! `TLSFOE_SCHOOLBOOK=1` ablation switch, which forces every
//! exponentiation (keygen, Miller–Rabin, sign, verify) back onto the
//! seed's schoolbook path.
//!
//! Typical usage: one-shot callers just use [`Ubig::modpow`] (it builds a
//! context transparently); repeated exponentiation against one modulus
//! builds a [`MontgomeryCtx`] once:
//!
//! ```
//! use tlsfoe_crypto::{MontgomeryCtx, Ubig};
//! let m = Ubig::from_u64(1_000_003); // odd modulus
//! let ctx = MontgomeryCtx::new(&m).unwrap();
//! let r = ctx.modpow(&Ubig::from_u64(4), &Ubig::from_u64(13)).unwrap();
//! assert_eq!(r, Ubig::from_u64(4).modpow_schoolbook(&Ubig::from_u64(13), &m).unwrap());
//! ```
//!
//! Nothing here is intended for production cryptographic use; it is a
//! faithful, testable substrate for a measurement-study reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod bigint;
pub mod ctxcache;
pub mod drbg;
pub mod hmac;
pub mod md5;
pub mod montgomery;
pub mod rsa;
pub mod sha1;
pub mod sha256;

pub use bigint::Ubig;
pub use ctxcache::{shared_ctx_cache, MontCtxCache};
pub use drbg::{Drbg, RngCore64};
pub use montgomery::{with_thread_scratch, ModpowPlan, ModpowScratch, MontgomeryCtx};
pub use rsa::{RsaCrt, RsaKeyPair, RsaPublicKey};

/// Digest algorithms supported by the workspace.
///
/// These are exactly the algorithms observed in the paper's corpus of
/// substitute certificates (§5.2): MD5 (23 negligent proxies), SHA-1
/// (the era's default) and SHA-256 (5 "better than original" proxies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HashAlg {
    /// MD5 (128-bit digest) — broken, flagged as negligent by the analyzer.
    Md5,
    /// SHA-1 (160-bit digest) — the default signature hash in 2014.
    Sha1,
    /// SHA-256 (256-bit digest).
    Sha256,
}

impl HashAlg {
    /// Digest length in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            HashAlg::Md5 => 16,
            HashAlg::Sha1 => 20,
            HashAlg::Sha256 => 32,
        }
    }

    /// Hash `data` with this algorithm, returning the digest bytes.
    pub fn digest(self, data: &[u8]) -> Vec<u8> {
        match self {
            HashAlg::Md5 => md5::md5(data).to_vec(),
            HashAlg::Sha1 => sha1::sha1(data).to_vec(),
            HashAlg::Sha256 => sha256::sha256(data).to_vec(),
        }
    }

    /// Human-readable name, matching OpenSSL's conventions.
    pub fn name(self) -> &'static str {
        match self {
            HashAlg::Md5 => "md5",
            HashAlg::Sha1 => "sha1",
            HashAlg::Sha256 => "sha256",
        }
    }
}

/// True when `TLSFOE_SCHOOLBOOK` is set (to anything but `0`): forces
/// [`Ubig::modpow`] and RSA signing back onto the seed's schoolbook
/// square-and-multiply path, for end-to-end perf ablations like
/// `TLSFOE_SCHOOLBOOK=1 exp_all`. Read once per process.
pub(crate) fn schoolbook_forced() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    // lint:allow(determinism, seed-equivalence ablation switch — both paths are asserted byte-identical, so the env read selects between two provably equal behaviors)
    *FORCED.get_or_init(|| std::env::var_os("TLSFOE_SCHOOLBOOK").is_some_and(|v| v != "0"))
}

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Division by zero in bignum arithmetic.
    DivisionByZero,
    /// An even modulus was given to Montgomery arithmetic (which requires
    /// `gcd(n, 2⁶⁴) = 1`); use the schoolbook path instead.
    EvenModulus,
    /// No modular inverse exists (operands not coprime).
    NoInverse,
    /// RSA message/representative is out of range for the modulus.
    MessageTooLong,
    /// A PKCS#1 v1.5 signature failed to verify.
    BadSignature,
    /// Key generation could not find a prime within the attempt budget.
    PrimeGenFailed,
    /// A key parameter was invalid (e.g. modulus too small for padding).
    InvalidKey(&'static str),
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::DivisionByZero => write!(f, "division by zero"),
            CryptoError::EvenModulus => write!(f, "even modulus in Montgomery arithmetic"),
            CryptoError::NoInverse => write!(f, "no modular inverse exists"),
            CryptoError::MessageTooLong => write!(f, "message too long for RSA modulus"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::PrimeGenFailed => write!(f, "prime generation failed"),
            CryptoError::InvalidKey(why) => write!(f, "invalid key: {why}"),
        }
    }
}

impl std::error::Error for CryptoError {}
