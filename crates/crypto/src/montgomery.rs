//! Montgomery-form modular arithmetic — the workspace's hot path.
//!
//! Every RSA operation in the simulator (keygen trial exponentiations,
//! Miller–Rabin witnesses, certificate signing, chain verification)
//! bottoms out in `a^e mod n`. The schoolbook path in [`crate::bigint`]
//! pays a full Knuth Algorithm-D division per square-and-multiply step —
//! ~3000 divisions per 1024-bit signature. This module removes every one
//! of them:
//!
//! * [`MontgomeryCtx`] precomputes, once per modulus, the Montgomery
//!   constants `n′ = -n⁻¹ mod 2⁶⁴` and `R² mod n` (with `R = 2^(64·k)`
//!   for a `k`-limb modulus);
//! * multiplication uses CIOS (Coarsely Integrated Operand Scanning,
//!   Koç–Acar–Kaliski 1996) over the existing little-endian `u64` limb
//!   representation — one fused multiply/reduce pass, no division;
//! * squaring has a dedicated fused-CIOS routine
//!   ([`MontgomeryCtx::sqrmod`] / the private `mont_sqr`) that skips the
//!   lower partial-product triangle (~25% fewer limb multiplies).
//!   **Measured caveat:** on this pure-`u128` substrate the uniform
//!   `mont_mul` inner loop pipelines so well (fixed trip counts, two
//!   independent multiply chains) that the ladder is consistently ~10%
//!   *faster* squaring via `mont_mul(a, a)` than via `mont_sqr`, whose
//!   per-row segment boundaries defeat the loop predictor — so the
//!   window ladder deliberately squares with `mont_mul`, and `sqrmod`
//!   serves callers (Miller–Rabin's repeated-squaring tail) where the
//!   two are measured at parity. `exp_perf` tracks `mont_mul_ns` vs
//!   `mont_sqr_ns` so a toolchain shift that flips the balance shows up
//!   in the perf trajectory;
//! * exponentiation is fixed 4-bit-window Montgomery ladder for long
//!   exponents, with a short-exponent binary path (no window table) that
//!   makes `e = 65537` verification cheap;
//! * the window ladder's working buffers live in a reusable
//!   [`ModpowScratch`]: callers on the signing hot path thread one
//!   workspace through any number of exponentiations
//!   ([`MontgomeryCtx::modpow_with`]) and the inner loop performs zero
//!   allocations; the convenience [`MontgomeryCtx::modpow`] borrows a
//!   thread-local workspace ([`with_thread_scratch`]), so even ad-hoc
//!   callers stop paying the per-call window-table allocation;
//! * exponents that are exponentiated repeatedly (RSA CRT half-exponents)
//!   can be *recoded once* into a [`ModpowPlan`] — the per-step window
//!   extraction (`Ubig::bit` probes) happens at plan-build time, and
//!   [`MontgomeryCtx::modpow_planned`] just walks the recoded windows.
//!   The plan width is 4 or 5 bits; see `rsa::CRT_WINDOW_BITS` for the
//!   measured decision between them;
//! * leaving Montgomery form is a dedicated REDC pass (`mont_redc`,
//!   `k²` limb multiplies) instead of a full `mont_mul` by plain 1
//!   (`2k²`) — one free half-multiply per exponentiation;
//! * operands already `< n` are copied, not re-divided.
//!
//! Callers that verify or exponentiate repeatedly against the *same*
//! modulus should fetch their context from
//! [`crate::ctxcache::shared_ctx_cache`] instead of rebuilding it — the
//! `R² mod n` division in [`MontgomeryCtx::new`] is the only division
//! left on the hot path.
//!
//! Montgomery reduction requires an odd modulus; [`crate::Ubig::modpow`]
//! transparently falls back to the schoolbook path for even moduli.

use crate::bigint::Ubig;
use crate::CryptoError;

/// Exponent bit-length at or below which plain binary square-and-multiply
/// beats building the 4-bit window table (the table costs 14 multiplies;
/// binary saves ~bits/4 of them). 65537 (17 bits) lands well below this.
const WINDOW_THRESHOLD_BITS: usize = 64;

/// Reusable working memory for [`MontgomeryCtx::modpow_with`] /
/// [`MontgomeryCtx::modpow_planned`].
///
/// One `modpow` call needs a `k+2`-limb reduction scratch, three `k`-limb
/// residues and (for long exponents) a `2^width · k`-limb window table.
/// Allocating those per call costs several heap round-trips per
/// signature; a `ModpowScratch` owns them across calls — buffers only
/// ever grow, so a workspace that has signed once is allocation-free for
/// every subsequent signature at the same (or smaller) key size.
///
/// The workspace carries no modulus state: it is just memory, safe to
/// share across contexts of different widths (each call re-slices to its
/// own `k`). Hot paths that cannot thread one explicitly (trait
/// boundaries, shared `&self` mints) borrow the thread-local workspace
/// via [`with_thread_scratch`].
#[derive(Debug, Default)]
pub struct ModpowScratch {
    /// Reduction scratch (`k + 2` limbs).
    t: Vec<u64>,
    /// Running accumulator (`k` limbs).
    acc: Vec<u64>,
    /// Ping-pong partner of `acc` (`k` limbs).
    tmp: Vec<u64>,
    /// Montgomery form of the base (`k` limbs).
    base: Vec<u64>,
    /// Window table (`2^width · k` limbs, entry `w` at `w*k..(w+1)*k`).
    table: Vec<u64>,
}

impl ModpowScratch {
    /// An empty workspace; buffers are sized lazily by first use.
    pub fn new() -> ModpowScratch {
        ModpowScratch::default()
    }

    /// Ensure capacity for a `k`-limb modulus and `entries`-slot table.
    fn ensure(&mut self, k: usize, entries: usize) {
        if self.t.len() < k + 2 {
            self.t.resize(k + 2, 0);
        }
        if self.acc.len() < k {
            self.acc.resize(k, 0);
            self.tmp.resize(k, 0);
            self.base.resize(k, 0);
        }
        if self.table.len() < entries * k {
            self.table.resize(entries * k, 0);
        }
    }
}

std::thread_local! {
    static THREAD_SCRATCH: core::cell::RefCell<ModpowScratch> =
        core::cell::RefCell::new(ModpowScratch::new());
}

/// Run `f` with this thread's shared [`ModpowScratch`].
///
/// This is what makes every signature in the process allocation-free
/// without threading a workspace through every call chain: the first
/// exponentiation on a thread sizes the buffers, every later one reuses
/// them. Re-entrant calls (none exist today — exponentiation never signs)
/// fall back to a fresh workspace rather than panicking on the borrow.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut ModpowScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut ModpowScratch::new()),
    })
}

/// A window recoding of one exponent, computed once and replayed by
/// [`MontgomeryCtx::modpow_planned`].
///
/// The general ladder re-extracts each window from the exponent limbs on
/// every call (`width` [`Ubig::bit`] probes per window — bounds-checked
/// limb indexing in the innermost loop). RSA signing exponentiates the
/// *same two* half-exponents (`d mod p-1`, `d mod q-1`) for the life of a
/// key, so [`crate::rsa::RsaCrt`] recodes them once at key construction
/// and every signature walks the precomputed byte array instead.
#[derive(Debug, Clone)]
pub struct ModpowPlan {
    /// Window width in bits (4 or 5).
    width: u8,
    /// Window values, most-significant window first; the leading window
    /// is non-zero.
    windows: Vec<u8>,
    /// Exponent bit length (for cost accounting / tests).
    bits: usize,
}

impl ModpowPlan {
    /// Recode `exp` into `width`-bit windows (`width` must be 4 or 5;
    /// `exp` must be non-zero — RSA private half-exponents always are).
    pub fn new(exp: &Ubig, width: u8) -> ModpowPlan {
        assert!(width == 4 || width == 5, "supported plan widths are 4 and 5");
        let bits = exp.bit_len();
        assert!(bits > 0, "cannot plan a zero exponent");
        let w = width as usize;
        let count = bits.div_ceil(w);
        let mut windows = Vec::with_capacity(count);
        for i in (0..count).rev() {
            let mut v = 0u8;
            for b in 0..w {
                if exp.bit(i * w + b) {
                    v |= 1 << b;
                }
            }
            windows.push(v);
        }
        debug_assert!(windows[0] != 0, "leading window contains the top bit");
        ModpowPlan { width, windows, bits }
    }

    /// Window width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Bit length of the planned exponent.
    pub fn bits(&self) -> usize {
        self.bits
    }
}

/// Precomputed per-modulus state for Montgomery arithmetic.
///
/// Build once per modulus with [`MontgomeryCtx::new`] (the only step that
/// still performs a division, for `R² mod n`), then run any number of
/// division-free [`modpow`](MontgomeryCtx::modpow) /
/// [`mulmod`](MontgomeryCtx::mulmod) calls against it. RSA keys cache one
/// context per prime factor (see `rsa::RsaCrt`), so signing performs no
/// divisions at all.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// Modulus limbs, little-endian, length `k` (top limb non-zero).
    n: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R² mod n`, used to convert operands into Montgomery form.
    r2: Vec<u64>,
    /// `R mod n` — the Montgomery representation of 1.
    one: Vec<u64>,
}

impl MontgomeryCtx {
    /// Precompute Montgomery constants for an odd modulus `n > 1`.
    ///
    /// Returns [`CryptoError::EvenModulus`] when `n` is even (Montgomery
    /// reduction needs `gcd(n, 2⁶⁴) = 1`) and
    /// [`CryptoError::DivisionByZero`] when `n` is zero.
    pub fn new(modulus: &Ubig) -> Result<MontgomeryCtx, CryptoError> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if !modulus.is_odd() {
            return Err(CryptoError::EvenModulus);
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();
        // Hensel-lift the inverse of n[0] mod 2⁶⁴: five Newton steps,
        // each doubling the number of correct low bits from the seed's 3
        // (x·x ≡ 1 mod 8 for odd x), giving 3·2⁵ = 96 ≥ 64.
        let mut inv: u64 = n[0]; // correct mod 2³ for odd n[0]
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R mod n and R² mod n via the (one-time) schoolbook machinery.
        let r_mod_n = Ubig::one().shl(64 * k).rem(modulus)?;
        let r2_big = r_mod_n.mulmod(&r_mod_n, modulus)?;
        Ok(MontgomeryCtx { one: fixed_limbs(&r_mod_n, k), r2: fixed_limbs(&r2_big, k), n, n0_inv })
    }

    /// Number of limbs `k` in the modulus.
    pub fn limb_count(&self) -> usize {
        self.n.len()
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> Ubig {
        Ubig::from_limbs(self.n.clone())
    }

    /// CIOS Montgomery multiplication: `out ← a·b·R⁻¹ mod n`.
    ///
    /// Fully fused form of Koç–Acar–Kaliski's Coarsely Integrated Operand
    /// Scanning: for each limb of `a`, one inner pass both accumulates
    /// `aᵢ·b` and folds in the `m·n` reduction term, writing results one
    /// limb down — so the divide-by-2⁶⁴ shift costs nothing and `t` is
    /// touched exactly once per pass. `a`, `b` and `out` are `k`-limb
    /// residues `< n`; `t` is a `k+2`-limb scratch buffer reused across
    /// calls. `out` must not alias `t`; aliasing `a`/`b` with `out` is
    /// fine (the product accumulates in `t` and is copied out at the end).
    fn mont_mul(&self, a: &[u64], b: &[u64], t: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        debug_assert!(a.len() == k && b.len() == k && out.len() == k && t.len() > k);
        let n = &self.n[..k];
        let b = &b[..k];
        let t = &mut t[..k + 1];
        t.fill(0);
        for &ai in a {
            // Limb 0: accumulate aᵢ·b₀, derive m = t₀·n′ mod 2⁶⁴, and
            // cancel the low limb with m·n₀ (the sum's low 64 bits are 0
            // by construction of n′).
            let sum = t[0] as u128 + ai as u128 * b[0] as u128;
            let mut carry_a = sum >> 64;
            let m = (sum as u64).wrapping_mul(self.n0_inv);
            let red = (sum as u64) as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(red as u64, 0);
            let mut carry_m = red >> 64;
            // Limbs 1..k: one fused pass, storing shifted one limb down.
            for j in 1..k {
                let sum = t[j] as u128 + ai as u128 * b[j] as u128 + carry_a;
                carry_a = sum >> 64;
                let red = (sum as u64) as u128 + m as u128 * n[j] as u128 + carry_m;
                carry_m = red >> 64;
                t[j - 1] = red as u64;
            }
            // Top limb: t[k] ≤ 1 throughout (t stays < 2n).
            let top = t[k] as u128 + carry_a + carry_m;
            t[k - 1] = top as u64;
            t[k] = (top >> 64) as u64;
        }
        // t < 2n here; one conditional subtraction normalizes to [0, n).
        cond_sub(&t[..k], t[k] != 0, n, out);
    }

    /// Fused CIOS Montgomery squaring: `out ← a²·R⁻¹ mod n`.
    ///
    /// Same row-shifted structure (and scratch contract) as
    /// [`mont_mul`](Self::mont_mul), exploiting the symmetry
    /// `a² = Σᵢ 2^{64i}·aᵢ·(aᵢ·2^{64i} + 2·Σ_{j>i} aⱼ·2^{64j})`:
    /// row `i` contributes its diagonal `aᵢ²` at row-local position `i`
    /// and *doubled* cross products for `j > i`, so positions `j < i`
    /// carry only the reduction term — the lower product triangle
    /// (~k²/2 of mont_mul's 2k² limb multiplies) is skipped entirely.
    /// See the module docs for why the window ladder nonetheless squares
    /// through `mont_mul`: the saved multiplies are measured to cost less
    /// than the pipeline regularity they buy on this substrate.
    ///
    /// Doubling makes the product carry chain (`carry_a`) up to 65 bits
    /// (`2·aᵢ·aⱼ ≥ 2¹²⁸` is possible), so it is tracked as `u128`; the
    /// row recurrence then keeps intermediate `t` below `3n + ε` (top
    /// limb ≤ 3) and the final value is exactly `(a² + M·n)/R < 2n`, so
    /// the usual single conditional subtraction normalizes it.
    /// `a` is a `k`-limb residue `< n`; `t` needs `k + 1` limbs; `out`
    /// may alias `a` but not `t`.
    fn mont_sqr(&self, a: &[u64], t: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        debug_assert!(a.len() == k && out.len() == k && t.len() > k);
        let n = &self.n[..k];
        let a = &a[..k];
        let t = &mut t[..k + 1];
        t.fill(0);
        for (i, &ai) in a.iter().enumerate() {
            let ai128 = ai as u128;
            // Row-local position 0: the only product term is row 0's
            // diagonal a₀²; every later row starts with reduction only.
            let (p_lo, p_hi): (u64, u128) = if i == 0 {
                let d = ai128 * ai128;
                (d as u64, d >> 64)
            } else {
                (0, 0)
            };
            let sum = t[0] as u128 + p_lo as u128;
            let mut carry_a: u128 = (sum >> 64) + p_hi;
            let m = (sum as u64).wrapping_mul(self.n0_inv);
            let red = (sum as u64) as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(red as u64, 0);
            let mut carry_m = red >> 64;
            // Positions 1..i: reduction term only (their products were
            // already added, doubled, by earlier rows).
            for j in 1..i {
                let sum = t[j] as u128 + carry_a;
                carry_a = sum >> 64;
                let red = (sum as u64) as u128 + m as u128 * n[j] as u128 + carry_m;
                carry_m = red >> 64;
                t[j - 1] = red as u64;
            }
            // Position i (row ≥ 1): the diagonal aᵢ², not doubled.
            if i >= 1 {
                let d = ai128 * ai128;
                let sum = t[i] as u128 + (d as u64) as u128 + carry_a;
                carry_a = (sum >> 64) + (d >> 64);
                let red = (sum as u64) as u128 + m as u128 * n[i] as u128 + carry_m;
                carry_m = red >> 64;
                t[i - 1] = red as u64;
            }
            // Positions i+1..k: doubled cross products 2·aᵢ·aⱼ. The
            // doubled product spans 129 bits: low 64 go into the sum,
            // the remaining 65 (d >> 63) ride the u128 carry.
            for j in i + 1..k {
                let d = ai128 * a[j] as u128;
                let sum = t[j] as u128 + ((d << 1) as u64) as u128 + carry_a;
                carry_a = (sum >> 64) + (d >> 63);
                let red = (sum as u64) as u128 + m as u128 * n[j] as u128 + carry_m;
                carry_m = red >> 64;
                t[j - 1] = red as u64;
            }
            // Top limb: carry_a may exceed 64 bits here, so the top can
            // briefly occupy two limbs (t[k] ≤ 3 mid-run, ≤ 1 at the end).
            let top = t[k] as u128 + carry_a + carry_m;
            t[k - 1] = top as u64;
            t[k] = (top >> 64) as u64;
        }
        // Final value is (a² + M·n)/R < 2n; one conditional subtraction.
        let (lo, hi) = t.split_at(k);
        cond_sub(lo, hi[0] != 0, n, out);
    }

    /// `(a · b) mod n` through Montgomery form (mainly for tests and
    /// one-off products; modpow batches conversions).
    pub fn mulmod(&self, a: &Ubig, b: &Ubig) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        let am = self.reduced_limbs(a)?;
        let bm = self.reduced_limbs(b)?;
        let mut t = vec![0u64; k + 2];
        let mut x = vec![0u64; k];
        let mut y = vec![0u64; k];
        self.mont_mul(&am, &self.r2, &mut t, &mut x); // a·R
        self.mont_mul(&x, &bm, &mut t, &mut y); // a·b (b unconverted cancels the R)
        Ok(Ubig::from_limbs(y))
    }

    /// `a² mod n` through the dedicated squaring routine.
    ///
    /// Exactly [`mulmod`](Self::mulmod)`(a, a)` but ~¾ the limb
    /// multiplies; Miller–Rabin's repeated-squaring loop and the modpow
    /// ladder both ride this.
    pub fn sqrmod(&self, a: &Ubig) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        let am = self.reduced_limbs(a)?;
        let mut t = vec![0u64; k + 2];
        let mut x = vec![0u64; k];
        let mut y = vec![0u64; k];
        self.mont_sqr(&am, &mut t, &mut x); // a²·R⁻¹
        self.mont_mul(&x, &self.r2, &mut t, &mut y); // a²
        Ok(Ubig::from_limbs(y))
    }

    /// `v mod n` as exactly `k` limbs — without touching the division
    /// machinery (or allocating a modulus clone) when `v < n` already,
    /// which is every operand on the sign/verify hot paths.
    fn reduced_limbs(&self, v: &Ubig) -> Result<Vec<u64>, CryptoError> {
        let k = self.n.len();
        let src = v.limbs();
        let already_reduced = src.len() < k
            || (src.len() == k && cmp_limbs(src, &self.n) == core::cmp::Ordering::Less);
        if already_reduced {
            let mut out = vec![0u64; k];
            out[..src.len()].copy_from_slice(src);
            Ok(out)
        } else {
            Ok(fixed_limbs(&v.rem(&self.modulus())?, k))
        }
    }

    /// Dedicated Montgomery reduction: `out ← a·R⁻¹ mod n` for a `k`-limb
    /// residue `a < n`.
    ///
    /// This is how results leave Montgomery form. A `mont_mul` by plain 1
    /// computes the same value with `2k²` limb multiplies, half of them
    /// against a buffer of zeros; the reduction-only pass pays `k²`. `t`
    /// needs `k + 1` limbs; `out` may alias `a` but not `t`.
    fn mont_redc(&self, a: &[u64], t: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        debug_assert!(a.len() == k && out.len() == k && t.len() > k);
        let n = &self.n[..k];
        let t = &mut t[..k + 1];
        t[..k].copy_from_slice(a);
        t[k] = 0;
        for _ in 0..k {
            // Cancel the low limb with m·n (its low 64 bits vanish by
            // construction of n′), then shift the whole value down one
            // limb — the same row structure as mont_mul with aᵢ = 0.
            let m = t[0].wrapping_mul(self.n0_inv);
            let red = t[0] as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(red as u64, 0);
            let mut carry = red >> 64;
            for j in 1..k {
                let sum = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                carry = sum >> 64;
                t[j - 1] = sum as u64;
            }
            let top = t[k] as u128 + carry;
            t[k - 1] = top as u64;
            t[k] = (top >> 64) as u64;
        }
        // a < n ≤ R keeps (a + M·n)/R < n + 1, so at most one subtraction.
        let (lo, hi) = t.split_at(k);
        cond_sub(lo, hi[0] != 0, n, out);
    }

    /// Write `v mod n` into `out[..k]` — without touching the division
    /// machinery (or allocating) when `v < n` already, which is every
    /// operand on the sign/verify hot paths.
    fn stage_reduced(&self, v: &Ubig, out: &mut [u64]) -> Result<(), CryptoError> {
        let k = self.n.len();
        let src = v.limbs();
        let already_reduced = src.len() < k
            || (src.len() == k && cmp_limbs(src, &self.n) == core::cmp::Ordering::Less);
        if already_reduced {
            out[..k].fill(0);
            out[..src.len()].copy_from_slice(src);
        } else {
            let reduced = v.rem(&self.modulus())?;
            let src = reduced.limbs();
            out[..k].fill(0);
            out[..src.len()].copy_from_slice(src);
        }
        Ok(())
    }

    /// Convert `base` into Montgomery form in `scratch.base`, reducing
    /// mod `n` first when necessary (`scratch.acc` is used as staging).
    fn base_to_mont(&self, base: &Ubig, scratch: &mut ModpowScratch) -> Result<(), CryptoError> {
        let k = self.n.len();
        self.stage_reduced(base, &mut scratch.acc)?;
        let (acc, base_m) = (&scratch.acc[..k], &mut scratch.base[..k]);
        self.mont_mul(acc, &self.r2, &mut scratch.t, base_m);
        Ok(())
    }

    /// [`mulmod`](Self::mulmod) against caller-owned working memory —
    /// the one-off products on the signing path (Garner recombination)
    /// ride this so a CRT signature allocates nothing but its results.
    pub fn mulmod_with(
        &self,
        a: &Ubig,
        b: &Ubig,
        scratch: &mut ModpowScratch,
    ) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        scratch.ensure(k, 0);
        self.base_to_mont(a, scratch)?; // scratch.base ← a·R
        self.stage_reduced(b, &mut scratch.acc)?;
        let ModpowScratch { t, acc, tmp, base, .. } = scratch;
        // a·R times plain b: the stray R cancels, leaving a·b mod n.
        self.mont_mul(&base[..k], &acc[..k], t, &mut tmp[..k]);
        Ok(Ubig::from_limbs(tmp[..k].to_vec()))
    }

    /// `base^exp mod n`, division-free.
    ///
    /// Long exponents use a fixed 4-bit window (16-entry table); exponents
    /// of at most [`WINDOW_THRESHOLD_BITS`] bits use plain left-to-right
    /// binary, which is cheaper than amortizing the table — that is the
    /// fast path RSA verification with `e = 65537` takes.
    ///
    /// Working memory is borrowed from the thread-local [`ModpowScratch`];
    /// callers that already hold one should use
    /// [`modpow_with`](Self::modpow_with) directly.
    pub fn modpow(&self, base: &Ubig, exp: &Ubig) -> Result<Ubig, CryptoError> {
        with_thread_scratch(|scratch| self.modpow_with(base, exp, scratch))
    }

    /// [`modpow`](Self::modpow) against caller-owned working memory: the
    /// entire exponentiation performs no allocation beyond the returned
    /// result (once `scratch` has grown to this width).
    pub fn modpow_with(
        &self,
        base: &Ubig,
        exp: &Ubig,
        scratch: &mut ModpowScratch,
    ) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        if k == 1 && self.n[0] == 1 {
            return Ok(Ubig::zero());
        }
        if exp.is_zero() {
            return Ok(Ubig::one());
        }
        let bits = exp.bit_len();
        scratch.ensure(k, if bits <= WINDOW_THRESHOLD_BITS { 0 } else { 16 });
        self.base_to_mont(base, scratch)?;

        let ModpowScratch { t, acc, tmp, base: base_buf, table } = scratch;
        let (mut acc, mut tmp) = (&mut acc[..k], &mut tmp[..k]);
        let base_m = &base_buf[..k];
        if bits <= WINDOW_THRESHOLD_BITS {
            // Short-exponent path: binary ladder, no table.
            acc.copy_from_slice(base_m);
            for i in (0..bits - 1).rev() {
                self.mont_mul(acc, acc, t, tmp);
                if exp.bit(i) {
                    self.mont_mul(tmp, base_m, t, acc);
                } else {
                    acc.copy_from_slice(tmp);
                }
            }
        } else {
            // Fixed 4-bit windows, most-significant first, extracted from
            // the exponent limbs as the ladder walks.
            self.fill_table(base_m, t, &mut table[..16 * k], 16);
            let windows = bits.div_ceil(4);
            let top = nibble(exp, windows - 1);
            acc.copy_from_slice(&table[top as usize * k..(top as usize + 1) * k]);
            for w in (0..windows - 1).rev() {
                for _ in 0..4 {
                    self.mont_mul(acc, acc, t, tmp);
                    core::mem::swap(&mut acc, &mut tmp);
                }
                let nib = nibble(exp, w) as usize;
                if nib != 0 {
                    self.mont_mul(acc, &table[nib * k..(nib + 1) * k], t, tmp);
                    core::mem::swap(&mut acc, &mut tmp);
                }
            }
        }

        // Leave Montgomery form with the reduction-only pass. (`acc` is
        // whichever ping-pong buffer holds the result after the swaps.)
        let mut out = vec![0u64; k];
        self.mont_redc(acc, t, &mut out);
        Ok(Ubig::from_limbs(out))
    }

    /// `base^plan mod n`: replay a precomputed window recoding.
    ///
    /// Identical result to [`modpow_with`](Self::modpow_with) with the
    /// planned exponent — the ladder just skips the per-window bit
    /// extraction and drives a `width`-bit table instead. This is the
    /// per-signature inner loop of `rsa::RsaCrt`.
    pub fn modpow_planned(
        &self,
        base: &Ubig,
        plan: &ModpowPlan,
        scratch: &mut ModpowScratch,
    ) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        if k == 1 && self.n[0] == 1 {
            return Ok(Ubig::zero());
        }
        let width = plan.width as usize;
        let entries = 1usize << width;
        scratch.ensure(k, entries);
        self.base_to_mont(base, scratch)?;

        let ModpowScratch { t, acc, tmp, base: base_buf, table } = scratch;
        let (mut acc, mut tmp) = (&mut acc[..k], &mut tmp[..k]);
        self.fill_table(&base_buf[..k], t, &mut table[..entries * k], entries);
        let top = plan.windows[0] as usize;
        acc.copy_from_slice(&table[top * k..(top + 1) * k]);
        for &w in &plan.windows[1..] {
            for _ in 0..width {
                self.mont_mul(acc, acc, t, tmp);
                core::mem::swap(&mut acc, &mut tmp);
            }
            if w != 0 {
                self.mont_mul(acc, &table[w as usize * k..(w as usize + 1) * k], t, tmp);
                core::mem::swap(&mut acc, &mut tmp);
            }
        }
        let mut out = vec![0u64; k];
        self.mont_redc(acc, t, &mut out);
        Ok(Ubig::from_limbs(out))
    }

    /// Fill the window `table` with `entries` Montgomery powers of
    /// `base_m`: entry `w` (at `w·k..`) holds `base^w · R mod n`.
    fn fill_table(&self, base_m: &[u64], t: &mut [u64], table: &mut [u64], entries: usize) {
        let k = self.n.len();
        table[..k].copy_from_slice(&self.one);
        table[k..2 * k].copy_from_slice(base_m);
        for w in 2..entries {
            let (lo, hi) = table.split_at_mut(w * k);
            self.mont_mul(&lo[(w - 1) * k..], base_m, t, &mut hi[..k]);
        }
    }

    /// `2^exp mod n` via a square-and-*double* ladder.
    ///
    /// In Montgomery form, multiplying the represented value by 2 is just
    /// doubling the representation (`(2x)·R = 2·(xR) mod n`) — an `O(k)`
    /// shift-and-conditional-subtract instead of a `k²` Montgomery
    /// multiply. A base-2 exponentiation therefore costs only the
    /// squarings: ~20% less than the general window ladder, with no
    /// window table to build. This is the fast path for the fixed base-2
    /// Miller–Rabin round that opens every primality test in
    /// [`crate::rsa::gen_prime`], where almost every sieved-but-composite
    /// candidate dies.
    pub fn pow2mod(&self, exp: &Ubig) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        if k == 1 && self.n[0] == 1 {
            return Ok(Ubig::zero());
        }
        if exp.is_zero() {
            return Ok(Ubig::one());
        }
        let mut t = vec![0u64; k + 2];
        let mut acc = vec![0u64; k];
        let mut tmp = vec![0u64; k];
        // Top exponent bit is always set: acc = 2̃ = double(1̃).
        acc.copy_from_slice(&self.one);
        mod_double(&mut acc, &self.n);
        for i in (0..exp.bit_len() - 1).rev() {
            self.mont_mul(&acc, &acc, &mut t, &mut tmp);
            core::mem::swap(&mut acc, &mut tmp);
            if exp.bit(i) {
                mod_double(&mut acc, &self.n);
            }
        }
        // Leave Montgomery form: multiply by 1 (the plain integer).
        let mut one_plain = vec![0u64; k];
        one_plain[0] = 1;
        self.mont_mul(&acc, &one_plain, &mut t, &mut tmp);
        Ok(Ubig::from_limbs(tmp))
    }
}

/// In-place modular doubling of a `k`-limb residue `v < n`:
/// `v ← 2v mod n` (the doubled value is `< 2n`, so one conditional
/// subtraction suffices).
fn mod_double(v: &mut [u64], n: &[u64]) {
    let mut carry = 0u64;
    for limb in v.iter_mut() {
        let shifted = (*limb << 1) | carry;
        carry = *limb >> 63;
        *limb = shifted;
    }
    if carry != 0 || cmp_limbs(v, n) != core::cmp::Ordering::Less {
        let mut borrow = 0u64;
        for (limb, &nj) in v.iter_mut().zip(n.iter()) {
            let (d1, b1) = limb.overflowing_sub(nj);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
    }
}

/// The `i`-th 4-bit window of `exp`, LSB window 0.
fn nibble(exp: &Ubig, i: usize) -> u8 {
    let mut v = 0u8;
    for b in 0..4 {
        if exp.bit(i * 4 + b) {
            v |= 1 << b;
        }
    }
    v
}

/// Limbs of `v` zero-extended to exactly `k` limbs (`v` must fit).
fn fixed_limbs(v: &Ubig, k: usize) -> Vec<u64> {
    let src = v.limbs();
    debug_assert!(src.len() <= k);
    let mut out = vec![0u64; k];
    out[..src.len()].copy_from_slice(src);
    out
}

/// Normalize a `< 2n` Montgomery-reduction result to `[0, n)`:
/// `out ← v - n` when `overflow` (a carry limb was set) or `v ≥ n`,
/// otherwise `out ← v`.
fn cond_sub(v: &[u64], overflow: bool, n: &[u64], out: &mut [u64]) {
    let k = n.len();
    debug_assert!(v.len() == k && out.len() == k);
    if overflow || cmp_limbs(v, n) != core::cmp::Ordering::Less {
        let mut borrow = 0u64;
        for j in 0..k {
            let (d1, b1) = v[j].overflowing_sub(n[j]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[j] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
    } else {
        out.copy_from_slice(v);
    }
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    core::cmp::Ordering::Equal
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::drbg::{Drbg, RngCore64};

    fn random_ubig(rng: &mut Drbg, limbs: usize) -> Ubig {
        let mut bytes = vec![0u8; limbs * 8];
        rng.fill_bytes(&mut bytes);
        Ubig::from_bytes_be(&bytes)
    }

    fn random_odd(rng: &mut Drbg, limbs: usize) -> Ubig {
        let mut m = random_ubig(rng, limbs);
        m.set_bit(0);
        m.set_bit(limbs * 64 - 1); // full limb count
        m
    }

    #[test]
    fn rejects_even_and_zero_modulus() {
        assert_eq!(MontgomeryCtx::new(&Ubig::from_u64(10)).unwrap_err(), CryptoError::EvenModulus);
        assert_eq!(MontgomeryCtx::new(&Ubig::zero()).unwrap_err(), CryptoError::DivisionByZero);
    }

    #[test]
    fn known_small_values() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(497)).unwrap();
        assert_eq!(
            ctx.modpow(&Ubig::from_u64(4), &Ubig::from_u64(13)).unwrap(),
            Ubig::from_u64(445)
        );
        assert_eq!(
            ctx.mulmod(&Ubig::from_u64(123), &Ubig::from_u64(456)).unwrap(),
            Ubig::from_u64(123 * 456 % 497)
        );
    }

    #[test]
    fn modulus_one_yields_zero() {
        let ctx = MontgomeryCtx::new(&Ubig::one()).unwrap();
        assert_eq!(ctx.modpow(&Ubig::from_u64(5), &Ubig::from_u64(3)).unwrap(), Ubig::zero());
    }

    #[test]
    fn zero_base_and_zero_exponent() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(1_000_003)).unwrap();
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::from_u64(100)).unwrap(), Ubig::zero());
        assert_eq!(ctx.modpow(&Ubig::from_u64(7), &Ubig::zero()).unwrap(), Ubig::one());
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::zero()).unwrap(), Ubig::one());
    }

    #[test]
    fn matches_schoolbook_across_limb_sizes() {
        let mut rng = Drbg::new(0x4d4f4e54);
        for limbs in 1..=9 {
            for _ in 0..8 {
                let m = random_odd(&mut rng, limbs);
                let a = random_ubig(&mut rng, limbs + 1);
                let e = random_ubig(&mut rng, 2);
                let ctx = MontgomeryCtx::new(&m).unwrap();
                assert_eq!(
                    ctx.modpow(&a, &e).unwrap(),
                    a.modpow_schoolbook(&e, &m).unwrap(),
                    "limbs={limbs} m={m:?} a={a:?} e={e:?}"
                );
            }
        }
    }

    #[test]
    fn short_and_long_exponent_paths_agree() {
        let mut rng = Drbg::new(0x57494e44);
        let m = random_odd(&mut rng, 4);
        let a = random_ubig(&mut rng, 4);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        // 64 bits takes the binary path, 65 the window path; check the
        // boundary against schoolbook on both sides.
        for bits in [63usize, 64, 65, 68] {
            let mut e = Ubig::zero();
            e.set_bit(bits - 1);
            e.set_bit(bits / 2);
            e.set_bit(0);
            assert_eq!(
                ctx.modpow(&a, &e).unwrap(),
                a.modpow_schoolbook(&e, &m).unwrap(),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn fermat_on_a_large_prime() {
        // 2^127 - 1 is prime (Mersenne); a^(p-1) ≡ 1 (mod p).
        let p = Ubig::one().shl(127).sub(&Ubig::one());
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let e = p.sub(&Ubig::one());
        for a in [2u64, 3, 0xdead_beef] {
            assert_eq!(ctx.modpow(&Ubig::from_u64(a), &e).unwrap(), Ubig::one());
        }
    }

    #[test]
    fn sqrmod_matches_mulmod_self_product() {
        // The determinism contract of the squaring specialization:
        // mont_sqr(x) ≡ mont_mul(x, x) for every input, at every width.
        let mut rng = Drbg::new(0x5351_5541_5245);
        for limbs in 1..=9 {
            for _ in 0..8 {
                let m = random_odd(&mut rng, limbs);
                let x = random_ubig(&mut rng, limbs + 1);
                let ctx = MontgomeryCtx::new(&m).unwrap();
                assert_eq!(
                    ctx.sqrmod(&x).unwrap(),
                    ctx.mulmod(&x, &x).unwrap(),
                    "limbs={limbs} m={m:?} x={x:?}"
                );
                assert_eq!(ctx.sqrmod(&x).unwrap(), x.mulmod(&x, &m).unwrap());
            }
        }
    }

    #[test]
    fn sqrmod_edge_values() {
        let m = Ubig::from_u64(1_000_003);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for v in [0u64, 1, 2, 1_000_002] {
            let x = Ubig::from_u64(v);
            assert_eq!(ctx.sqrmod(&x).unwrap(), Ubig::from_u64(v * v % 1_000_003), "v={v}");
        }
    }

    #[test]
    fn pow2mod_matches_general_ladder() {
        // The doubling ladder must be indistinguishable from modpow with
        // base 2, across widths and exponent lengths (short exponents
        // exercise the binary modpow path, long ones the window path).
        let mut rng = Drbg::new(0x504f_5732);
        let two = Ubig::from_u64(2);
        for limbs in 1..=9 {
            for case in 0..6 {
                let m = random_odd(&mut rng, limbs);
                let ctx = MontgomeryCtx::new(&m).unwrap();
                let e = if case % 2 == 0 {
                    Ubig::from_u64(rng.next_u64())
                } else {
                    random_ubig(&mut rng, limbs)
                };
                assert_eq!(
                    ctx.pow2mod(&e).unwrap(),
                    ctx.modpow(&two, &e).unwrap(),
                    "limbs={limbs} e={e:?} m={m:?}"
                );
            }
        }
    }

    #[test]
    fn pow2mod_edge_cases() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(1_000_003)).unwrap();
        assert_eq!(ctx.pow2mod(&Ubig::zero()).unwrap(), Ubig::one());
        assert_eq!(ctx.pow2mod(&Ubig::one()).unwrap(), Ubig::from_u64(2));
        assert_eq!(ctx.pow2mod(&Ubig::from_u64(20)).unwrap(), Ubig::from_u64(48_573)); // 2^20 mod 1000003
        let one = MontgomeryCtx::new(&Ubig::one()).unwrap();
        assert_eq!(one.pow2mod(&Ubig::from_u64(5)).unwrap(), Ubig::zero());
        // Modulus 3: doubling wraps on every step (2 ≡ −1).
        let three = MontgomeryCtx::new(&Ubig::from_u64(3)).unwrap();
        assert_eq!(three.pow2mod(&Ubig::from_u64(5)).unwrap(), Ubig::from_u64(2));
        assert_eq!(three.pow2mod(&Ubig::from_u64(6)).unwrap(), Ubig::one());
    }

    #[test]
    fn planned_modpow_matches_general_ladder() {
        // The per-key plan contract: replaying a recoded exponent through
        // one shared scratch must be indistinguishable from the general
        // ladder, at both supported widths, across operand widths, and
        // with the SAME workspace reused between differently-sized moduli
        // (the thread-local usage pattern).
        let mut rng = Drbg::new(0x504c_414e);
        let mut scratch = ModpowScratch::new();
        for limbs in 1..=9 {
            for _ in 0..6 {
                let m = random_odd(&mut rng, limbs);
                let a = random_ubig(&mut rng, limbs + 1);
                let mut e = random_ubig(&mut rng, limbs.max(2));
                e.set_bit(limbs.max(2) * 64 - 7); // non-trivial window count
                let ctx = MontgomeryCtx::new(&m).unwrap();
                let reference = ctx.modpow(&a, &e).unwrap();
                for width in [4u8, 5] {
                    let plan = ModpowPlan::new(&e, width);
                    assert_eq!(plan.width(), width);
                    assert_eq!(plan.bits(), e.bit_len());
                    assert_eq!(
                        ctx.modpow_planned(&a, &plan, &mut scratch).unwrap(),
                        reference,
                        "limbs={limbs} width={width} m={m:?} a={a:?} e={e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn modpow_with_matches_modpow_across_scratch_reuse() {
        // One workspace, alternating widths and short/long exponents —
        // stale buffer contents from a previous call must never leak into
        // the next result.
        let mut rng = Drbg::new(0x5343_5241);
        let mut scratch = ModpowScratch::new();
        for round in 0..12 {
            let limbs = 1 + (round * 5) % 9;
            let m = random_odd(&mut rng, limbs);
            let a = random_ubig(&mut rng, limbs);
            let e = if round % 2 == 0 {
                Ubig::from_u64(rng.next_u64()) // short (binary) path
            } else {
                random_ubig(&mut rng, limbs) // window path
            };
            let ctx = MontgomeryCtx::new(&m).unwrap();
            assert_eq!(
                ctx.modpow_with(&a, &e, &mut scratch).unwrap(),
                a.modpow_schoolbook(&e, &m).unwrap(),
                "round={round} limbs={limbs}"
            );
        }
    }

    #[test]
    fn planned_modpow_edge_cases() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(1_000_003)).unwrap();
        let mut scratch = ModpowScratch::new();
        // Zero base, exponent one, modulus one.
        let e = Ubig::from_u64(13);
        let plan = ModpowPlan::new(&e, 4);
        assert_eq!(ctx.modpow_planned(&Ubig::zero(), &plan, &mut scratch).unwrap(), Ubig::zero());
        let one_exp = ModpowPlan::new(&Ubig::one(), 5);
        assert_eq!(
            ctx.modpow_planned(&Ubig::from_u64(7), &one_exp, &mut scratch).unwrap(),
            Ubig::from_u64(7)
        );
        let unit = MontgomeryCtx::new(&Ubig::one()).unwrap();
        assert_eq!(
            unit.modpow_planned(&Ubig::from_u64(5), &plan, &mut scratch).unwrap(),
            Ubig::zero()
        );
    }

    #[test]
    fn mulmod_with_matches_mulmod() {
        let mut rng = Drbg::new(0x4d55_4c57);
        let mut scratch = ModpowScratch::new();
        for limbs in 1..=6 {
            let m = random_odd(&mut rng, limbs);
            let a = random_ubig(&mut rng, limbs + 1); // exercises staging rem
            let b = random_ubig(&mut rng, limbs);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            assert_eq!(
                ctx.mulmod_with(&a, &b, &mut scratch).unwrap(),
                ctx.mulmod(&a, &b).unwrap(),
                "limbs={limbs}"
            );
        }
    }

    #[test]
    fn thread_scratch_is_reused_and_reentrancy_safe() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(497)).unwrap();
        let r = with_thread_scratch(|outer| {
            // A nested borrow must fall back to a fresh workspace instead
            // of panicking (no such caller exists today — this pins the
            // contract).
            let nested = with_thread_scratch(|inner| {
                ctx.modpow_with(&Ubig::from_u64(4), &Ubig::from_u64(13), inner).unwrap()
            });
            let direct = ctx.modpow_with(&Ubig::from_u64(4), &Ubig::from_u64(13), outer).unwrap();
            assert_eq!(nested, direct);
            direct
        });
        assert_eq!(r, Ubig::from_u64(445));
    }

    #[test]
    fn base_larger_than_modulus_reduced() {
        let mut rng = Drbg::new(0x42415345);
        let m = random_odd(&mut rng, 2);
        let a = random_ubig(&mut rng, 5);
        let e = Ubig::from_u64(65537);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.modpow(&a, &e).unwrap(), a.modpow_schoolbook(&e, &m).unwrap());
    }
}
