//! Montgomery-form modular arithmetic — the workspace's hot path.
//!
//! Every RSA operation in the simulator (keygen trial exponentiations,
//! Miller–Rabin witnesses, certificate signing, chain verification)
//! bottoms out in `a^e mod n`. The schoolbook path in [`crate::bigint`]
//! pays a full Knuth Algorithm-D division per square-and-multiply step —
//! ~3000 divisions per 1024-bit signature. This module removes every one
//! of them:
//!
//! * [`MontgomeryCtx`] precomputes, once per modulus, the Montgomery
//!   constants `n′ = -n⁻¹ mod 2⁶⁴` and `R² mod n` (with `R = 2^(64·k)`
//!   for a `k`-limb modulus);
//! * multiplication uses CIOS (Coarsely Integrated Operand Scanning,
//!   Koç–Acar–Kaliski 1996) over the existing little-endian `u64` limb
//!   representation — one fused multiply/reduce pass, no division;
//! * squaring has a dedicated fused-CIOS routine
//!   ([`MontgomeryCtx::sqrmod`] / the private `mont_sqr`) that skips the
//!   lower partial-product triangle (~25% fewer limb multiplies).
//!   **Measured caveat:** on this pure-`u128` substrate the uniform
//!   `mont_mul` inner loop pipelines so well (fixed trip counts, two
//!   independent multiply chains) that the ladder is consistently ~10%
//!   *faster* squaring via `mont_mul(a, a)` than via `mont_sqr`, whose
//!   per-row segment boundaries defeat the loop predictor — so the
//!   window ladder deliberately squares with `mont_mul`, and `sqrmod`
//!   serves callers (Miller–Rabin's repeated-squaring tail) where the
//!   two are measured at parity. `exp_perf` tracks `mont_mul_ns` vs
//!   `mont_sqr_ns` so a toolchain shift that flips the balance shows up
//!   in the perf trajectory;
//! * exponentiation is fixed 4-bit-window Montgomery ladder for long
//!   exponents, with a short-exponent binary path (no window table) that
//!   makes `e = 65537` verification cheap;
//! * all scratch buffers are allocated once per [`MontgomeryCtx::modpow`]
//!   call and reused across every window step, so the inner loop performs
//!   zero allocations; operands already `< n` are copied, not re-divided.
//!
//! Callers that verify or exponentiate repeatedly against the *same*
//! modulus should fetch their context from
//! [`crate::ctxcache::verify_ctx_cache`] instead of rebuilding it — the
//! `R² mod n` division in [`MontgomeryCtx::new`] is the only division
//! left on the hot path.
//!
//! Montgomery reduction requires an odd modulus; [`crate::Ubig::modpow`]
//! transparently falls back to the schoolbook path for even moduli.

use crate::bigint::Ubig;
use crate::CryptoError;

/// Exponent bit-length at or below which plain binary square-and-multiply
/// beats building the 4-bit window table (the table costs 14 multiplies;
/// binary saves ~bits/4 of them). 65537 (17 bits) lands well below this.
const WINDOW_THRESHOLD_BITS: usize = 64;

/// Precomputed per-modulus state for Montgomery arithmetic.
///
/// Build once per modulus with [`MontgomeryCtx::new`] (the only step that
/// still performs a division, for `R² mod n`), then run any number of
/// division-free [`modpow`](MontgomeryCtx::modpow) /
/// [`mulmod`](MontgomeryCtx::mulmod) calls against it. RSA keys cache one
/// context per prime factor (see `rsa::RsaCrt`), so signing performs no
/// divisions at all.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// Modulus limbs, little-endian, length `k` (top limb non-zero).
    n: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R² mod n`, used to convert operands into Montgomery form.
    r2: Vec<u64>,
    /// `R mod n` — the Montgomery representation of 1.
    one: Vec<u64>,
}

impl MontgomeryCtx {
    /// Precompute Montgomery constants for an odd modulus `n > 1`.
    ///
    /// Returns [`CryptoError::EvenModulus`] when `n` is even (Montgomery
    /// reduction needs `gcd(n, 2⁶⁴) = 1`) and
    /// [`CryptoError::DivisionByZero`] when `n` is zero.
    pub fn new(modulus: &Ubig) -> Result<MontgomeryCtx, CryptoError> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if !modulus.is_odd() {
            return Err(CryptoError::EvenModulus);
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();
        // Hensel-lift the inverse of n[0] mod 2⁶⁴: five Newton steps,
        // each doubling the number of correct low bits from the seed's 3
        // (x·x ≡ 1 mod 8 for odd x), giving 3·2⁵ = 96 ≥ 64.
        let mut inv: u64 = n[0]; // correct mod 2³ for odd n[0]
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R mod n and R² mod n via the (one-time) schoolbook machinery.
        let r_mod_n = Ubig::one().shl(64 * k).rem(modulus)?;
        let r2_big = r_mod_n.mulmod(&r_mod_n, modulus)?;
        Ok(MontgomeryCtx { one: fixed_limbs(&r_mod_n, k), r2: fixed_limbs(&r2_big, k), n, n0_inv })
    }

    /// Number of limbs `k` in the modulus.
    pub fn limb_count(&self) -> usize {
        self.n.len()
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> Ubig {
        Ubig::from_limbs(self.n.clone())
    }

    /// CIOS Montgomery multiplication: `out ← a·b·R⁻¹ mod n`.
    ///
    /// Fully fused form of Koç–Acar–Kaliski's Coarsely Integrated Operand
    /// Scanning: for each limb of `a`, one inner pass both accumulates
    /// `aᵢ·b` and folds in the `m·n` reduction term, writing results one
    /// limb down — so the divide-by-2⁶⁴ shift costs nothing and `t` is
    /// touched exactly once per pass. `a`, `b` and `out` are `k`-limb
    /// residues `< n`; `t` is a `k+2`-limb scratch buffer reused across
    /// calls. `out` must not alias `t`; aliasing `a`/`b` with `out` is
    /// fine (the product accumulates in `t` and is copied out at the end).
    fn mont_mul(&self, a: &[u64], b: &[u64], t: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        debug_assert!(a.len() == k && b.len() == k && out.len() == k && t.len() > k);
        let n = &self.n[..k];
        let b = &b[..k];
        let t = &mut t[..k + 1];
        t.fill(0);
        for &ai in a {
            // Limb 0: accumulate aᵢ·b₀, derive m = t₀·n′ mod 2⁶⁴, and
            // cancel the low limb with m·n₀ (the sum's low 64 bits are 0
            // by construction of n′).
            let sum = t[0] as u128 + ai as u128 * b[0] as u128;
            let mut carry_a = sum >> 64;
            let m = (sum as u64).wrapping_mul(self.n0_inv);
            let red = (sum as u64) as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(red as u64, 0);
            let mut carry_m = red >> 64;
            // Limbs 1..k: one fused pass, storing shifted one limb down.
            for j in 1..k {
                let sum = t[j] as u128 + ai as u128 * b[j] as u128 + carry_a;
                carry_a = sum >> 64;
                let red = (sum as u64) as u128 + m as u128 * n[j] as u128 + carry_m;
                carry_m = red >> 64;
                t[j - 1] = red as u64;
            }
            // Top limb: t[k] ≤ 1 throughout (t stays < 2n).
            let top = t[k] as u128 + carry_a + carry_m;
            t[k - 1] = top as u64;
            t[k] = (top >> 64) as u64;
        }
        // t < 2n here; one conditional subtraction normalizes to [0, n).
        cond_sub(&t[..k], t[k] != 0, n, out);
    }

    /// Fused CIOS Montgomery squaring: `out ← a²·R⁻¹ mod n`.
    ///
    /// Same row-shifted structure (and scratch contract) as
    /// [`mont_mul`](Self::mont_mul), exploiting the symmetry
    /// `a² = Σᵢ 2^{64i}·aᵢ·(aᵢ·2^{64i} + 2·Σ_{j>i} aⱼ·2^{64j})`:
    /// row `i` contributes its diagonal `aᵢ²` at row-local position `i`
    /// and *doubled* cross products for `j > i`, so positions `j < i`
    /// carry only the reduction term — the lower product triangle
    /// (~k²/2 of mont_mul's 2k² limb multiplies) is skipped entirely.
    /// See the module docs for why the window ladder nonetheless squares
    /// through `mont_mul`: the saved multiplies are measured to cost less
    /// than the pipeline regularity they buy on this substrate.
    ///
    /// Doubling makes the product carry chain (`carry_a`) up to 65 bits
    /// (`2·aᵢ·aⱼ ≥ 2¹²⁸` is possible), so it is tracked as `u128`; the
    /// row recurrence then keeps intermediate `t` below `3n + ε` (top
    /// limb ≤ 3) and the final value is exactly `(a² + M·n)/R < 2n`, so
    /// the usual single conditional subtraction normalizes it.
    /// `a` is a `k`-limb residue `< n`; `t` needs `k + 1` limbs; `out`
    /// may alias `a` but not `t`.
    fn mont_sqr(&self, a: &[u64], t: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        debug_assert!(a.len() == k && out.len() == k && t.len() > k);
        let n = &self.n[..k];
        let a = &a[..k];
        let t = &mut t[..k + 1];
        t.fill(0);
        for (i, &ai) in a.iter().enumerate() {
            let ai128 = ai as u128;
            // Row-local position 0: the only product term is row 0's
            // diagonal a₀²; every later row starts with reduction only.
            let (p_lo, p_hi): (u64, u128) = if i == 0 {
                let d = ai128 * ai128;
                (d as u64, d >> 64)
            } else {
                (0, 0)
            };
            let sum = t[0] as u128 + p_lo as u128;
            let mut carry_a: u128 = (sum >> 64) + p_hi;
            let m = (sum as u64).wrapping_mul(self.n0_inv);
            let red = (sum as u64) as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(red as u64, 0);
            let mut carry_m = red >> 64;
            // Positions 1..i: reduction term only (their products were
            // already added, doubled, by earlier rows).
            for j in 1..i {
                let sum = t[j] as u128 + carry_a;
                carry_a = sum >> 64;
                let red = (sum as u64) as u128 + m as u128 * n[j] as u128 + carry_m;
                carry_m = red >> 64;
                t[j - 1] = red as u64;
            }
            // Position i (row ≥ 1): the diagonal aᵢ², not doubled.
            if i >= 1 {
                let d = ai128 * ai128;
                let sum = t[i] as u128 + (d as u64) as u128 + carry_a;
                carry_a = (sum >> 64) + (d >> 64);
                let red = (sum as u64) as u128 + m as u128 * n[i] as u128 + carry_m;
                carry_m = red >> 64;
                t[i - 1] = red as u64;
            }
            // Positions i+1..k: doubled cross products 2·aᵢ·aⱼ. The
            // doubled product spans 129 bits: low 64 go into the sum,
            // the remaining 65 (d >> 63) ride the u128 carry.
            for j in i + 1..k {
                let d = ai128 * a[j] as u128;
                let sum = t[j] as u128 + ((d << 1) as u64) as u128 + carry_a;
                carry_a = (sum >> 64) + (d >> 63);
                let red = (sum as u64) as u128 + m as u128 * n[j] as u128 + carry_m;
                carry_m = red >> 64;
                t[j - 1] = red as u64;
            }
            // Top limb: carry_a may exceed 64 bits here, so the top can
            // briefly occupy two limbs (t[k] ≤ 3 mid-run, ≤ 1 at the end).
            let top = t[k] as u128 + carry_a + carry_m;
            t[k - 1] = top as u64;
            t[k] = (top >> 64) as u64;
        }
        // Final value is (a² + M·n)/R < 2n; one conditional subtraction.
        let (lo, hi) = t.split_at(k);
        cond_sub(lo, hi[0] != 0, n, out);
    }

    /// `(a · b) mod n` through Montgomery form (mainly for tests and
    /// one-off products; modpow batches conversions).
    pub fn mulmod(&self, a: &Ubig, b: &Ubig) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        let am = self.reduced_limbs(a)?;
        let bm = self.reduced_limbs(b)?;
        let mut t = vec![0u64; k + 2];
        let mut x = vec![0u64; k];
        let mut y = vec![0u64; k];
        self.mont_mul(&am, &self.r2, &mut t, &mut x); // a·R
        self.mont_mul(&x, &bm, &mut t, &mut y); // a·b (b unconverted cancels the R)
        Ok(Ubig::from_limbs(y))
    }

    /// `a² mod n` through the dedicated squaring routine.
    ///
    /// Exactly [`mulmod`](Self::mulmod)`(a, a)` but ~¾ the limb
    /// multiplies; Miller–Rabin's repeated-squaring loop and the modpow
    /// ladder both ride this.
    pub fn sqrmod(&self, a: &Ubig) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        let am = self.reduced_limbs(a)?;
        let mut t = vec![0u64; k + 2];
        let mut x = vec![0u64; k];
        let mut y = vec![0u64; k];
        self.mont_sqr(&am, &mut t, &mut x); // a²·R⁻¹
        self.mont_mul(&x, &self.r2, &mut t, &mut y); // a²
        Ok(Ubig::from_limbs(y))
    }

    /// `v mod n` as exactly `k` limbs — without touching the division
    /// machinery (or allocating a modulus clone) when `v < n` already,
    /// which is every operand on the sign/verify hot paths.
    fn reduced_limbs(&self, v: &Ubig) -> Result<Vec<u64>, CryptoError> {
        let k = self.n.len();
        let src = v.limbs();
        let already_reduced = src.len() < k
            || (src.len() == k && cmp_limbs(src, &self.n) == core::cmp::Ordering::Less);
        if already_reduced {
            let mut out = vec![0u64; k];
            out[..src.len()].copy_from_slice(src);
            Ok(out)
        } else {
            Ok(fixed_limbs(&v.rem(&self.modulus())?, k))
        }
    }

    /// `base^exp mod n`, division-free.
    ///
    /// Long exponents use a fixed 4-bit window (16-entry table); exponents
    /// of at most [`WINDOW_THRESHOLD_BITS`] bits use plain left-to-right
    /// binary, which is cheaper than amortizing the table — that is the
    /// fast path RSA verification with `e = 65537` takes.
    pub fn modpow(&self, base: &Ubig, exp: &Ubig) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        if k == 1 && self.n[0] == 1 {
            return Ok(Ubig::zero());
        }
        if exp.is_zero() {
            return Ok(Ubig::one());
        }

        // Scratch buffers, allocated once and reused for every step.
        let mut t = vec![0u64; k + 2];
        let mut acc = vec![0u64; k];
        let mut tmp = vec![0u64; k];

        let base_m = {
            let reduced = self.reduced_limbs(base)?;
            self.mont_mul(&reduced, &self.r2, &mut t, &mut tmp);
            tmp.clone()
        };

        let bits = exp.bit_len();
        if bits <= WINDOW_THRESHOLD_BITS {
            // Short-exponent path: binary ladder, no table.
            acc.copy_from_slice(&base_m);
            for i in (0..bits - 1).rev() {
                self.mont_mul(&acc, &acc, &mut t, &mut tmp);
                if exp.bit(i) {
                    self.mont_mul(&tmp, &base_m, &mut t, &mut acc);
                } else {
                    acc.copy_from_slice(&tmp);
                }
            }
        } else {
            // Fixed 4-bit windows, most-significant first.
            let mut table = vec![0u64; 16 * k];
            table[..k].copy_from_slice(&self.one);
            table[k..2 * k].copy_from_slice(&base_m);
            for w in 2..16 {
                let (lo, hi) = table.split_at_mut(w * k);
                self.mont_mul(&lo[(w - 1) * k..], &base_m, &mut t, &mut hi[..k]);
            }
            let windows = bits.div_ceil(4);
            let top = nibble(exp, windows - 1);
            acc.copy_from_slice(&table[top as usize * k..(top as usize + 1) * k]);
            for w in (0..windows - 1).rev() {
                for _ in 0..4 {
                    self.mont_mul(&acc, &acc, &mut t, &mut tmp);
                    core::mem::swap(&mut acc, &mut tmp);
                }
                let nib = nibble(exp, w) as usize;
                if nib != 0 {
                    self.mont_mul(&acc, &table[nib * k..(nib + 1) * k], &mut t, &mut tmp);
                    core::mem::swap(&mut acc, &mut tmp);
                }
            }
        }

        // Leave Montgomery form: multiply by 1 (the plain integer).
        let mut one_plain = vec![0u64; k];
        one_plain[0] = 1;
        self.mont_mul(&acc, &one_plain, &mut t, &mut tmp);
        Ok(Ubig::from_limbs(tmp))
    }

    /// `2^exp mod n` via a square-and-*double* ladder.
    ///
    /// In Montgomery form, multiplying the represented value by 2 is just
    /// doubling the representation (`(2x)·R = 2·(xR) mod n`) — an `O(k)`
    /// shift-and-conditional-subtract instead of a `k²` Montgomery
    /// multiply. A base-2 exponentiation therefore costs only the
    /// squarings: ~20% less than the general window ladder, with no
    /// window table to build. This is the fast path for the fixed base-2
    /// Miller–Rabin round that opens every primality test in
    /// [`crate::rsa::gen_prime`], where almost every sieved-but-composite
    /// candidate dies.
    pub fn pow2mod(&self, exp: &Ubig) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        if k == 1 && self.n[0] == 1 {
            return Ok(Ubig::zero());
        }
        if exp.is_zero() {
            return Ok(Ubig::one());
        }
        let mut t = vec![0u64; k + 2];
        let mut acc = vec![0u64; k];
        let mut tmp = vec![0u64; k];
        // Top exponent bit is always set: acc = 2̃ = double(1̃).
        acc.copy_from_slice(&self.one);
        mod_double(&mut acc, &self.n);
        for i in (0..exp.bit_len() - 1).rev() {
            self.mont_mul(&acc, &acc, &mut t, &mut tmp);
            core::mem::swap(&mut acc, &mut tmp);
            if exp.bit(i) {
                mod_double(&mut acc, &self.n);
            }
        }
        // Leave Montgomery form: multiply by 1 (the plain integer).
        let mut one_plain = vec![0u64; k];
        one_plain[0] = 1;
        self.mont_mul(&acc, &one_plain, &mut t, &mut tmp);
        Ok(Ubig::from_limbs(tmp))
    }
}

/// In-place modular doubling of a `k`-limb residue `v < n`:
/// `v ← 2v mod n` (the doubled value is `< 2n`, so one conditional
/// subtraction suffices).
fn mod_double(v: &mut [u64], n: &[u64]) {
    let mut carry = 0u64;
    for limb in v.iter_mut() {
        let shifted = (*limb << 1) | carry;
        carry = *limb >> 63;
        *limb = shifted;
    }
    if carry != 0 || cmp_limbs(v, n) != core::cmp::Ordering::Less {
        let mut borrow = 0u64;
        for (limb, &nj) in v.iter_mut().zip(n.iter()) {
            let (d1, b1) = limb.overflowing_sub(nj);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
    }
}

/// The `i`-th 4-bit window of `exp`, LSB window 0.
fn nibble(exp: &Ubig, i: usize) -> u8 {
    let mut v = 0u8;
    for b in 0..4 {
        if exp.bit(i * 4 + b) {
            v |= 1 << b;
        }
    }
    v
}

/// Limbs of `v` zero-extended to exactly `k` limbs (`v` must fit).
fn fixed_limbs(v: &Ubig, k: usize) -> Vec<u64> {
    let src = v.limbs();
    debug_assert!(src.len() <= k);
    let mut out = vec![0u64; k];
    out[..src.len()].copy_from_slice(src);
    out
}

/// Normalize a `< 2n` Montgomery-reduction result to `[0, n)`:
/// `out ← v - n` when `overflow` (a carry limb was set) or `v ≥ n`,
/// otherwise `out ← v`.
fn cond_sub(v: &[u64], overflow: bool, n: &[u64], out: &mut [u64]) {
    let k = n.len();
    debug_assert!(v.len() == k && out.len() == k);
    if overflow || cmp_limbs(v, n) != core::cmp::Ordering::Less {
        let mut borrow = 0u64;
        for j in 0..k {
            let (d1, b1) = v[j].overflowing_sub(n[j]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[j] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
    } else {
        out.copy_from_slice(v);
    }
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    core::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::{Drbg, RngCore64};

    fn random_ubig(rng: &mut Drbg, limbs: usize) -> Ubig {
        let mut bytes = vec![0u8; limbs * 8];
        rng.fill_bytes(&mut bytes);
        Ubig::from_bytes_be(&bytes)
    }

    fn random_odd(rng: &mut Drbg, limbs: usize) -> Ubig {
        let mut m = random_ubig(rng, limbs);
        m.set_bit(0);
        m.set_bit(limbs * 64 - 1); // full limb count
        m
    }

    #[test]
    fn rejects_even_and_zero_modulus() {
        assert_eq!(MontgomeryCtx::new(&Ubig::from_u64(10)).unwrap_err(), CryptoError::EvenModulus);
        assert_eq!(MontgomeryCtx::new(&Ubig::zero()).unwrap_err(), CryptoError::DivisionByZero);
    }

    #[test]
    fn known_small_values() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(497)).unwrap();
        assert_eq!(
            ctx.modpow(&Ubig::from_u64(4), &Ubig::from_u64(13)).unwrap(),
            Ubig::from_u64(445)
        );
        assert_eq!(
            ctx.mulmod(&Ubig::from_u64(123), &Ubig::from_u64(456)).unwrap(),
            Ubig::from_u64(123 * 456 % 497)
        );
    }

    #[test]
    fn modulus_one_yields_zero() {
        let ctx = MontgomeryCtx::new(&Ubig::one()).unwrap();
        assert_eq!(ctx.modpow(&Ubig::from_u64(5), &Ubig::from_u64(3)).unwrap(), Ubig::zero());
    }

    #[test]
    fn zero_base_and_zero_exponent() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(1_000_003)).unwrap();
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::from_u64(100)).unwrap(), Ubig::zero());
        assert_eq!(ctx.modpow(&Ubig::from_u64(7), &Ubig::zero()).unwrap(), Ubig::one());
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::zero()).unwrap(), Ubig::one());
    }

    #[test]
    fn matches_schoolbook_across_limb_sizes() {
        let mut rng = Drbg::new(0x4d4f4e54);
        for limbs in 1..=9 {
            for _ in 0..8 {
                let m = random_odd(&mut rng, limbs);
                let a = random_ubig(&mut rng, limbs + 1);
                let e = random_ubig(&mut rng, 2);
                let ctx = MontgomeryCtx::new(&m).unwrap();
                assert_eq!(
                    ctx.modpow(&a, &e).unwrap(),
                    a.modpow_schoolbook(&e, &m).unwrap(),
                    "limbs={limbs} m={m:?} a={a:?} e={e:?}"
                );
            }
        }
    }

    #[test]
    fn short_and_long_exponent_paths_agree() {
        let mut rng = Drbg::new(0x57494e44);
        let m = random_odd(&mut rng, 4);
        let a = random_ubig(&mut rng, 4);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        // 64 bits takes the binary path, 65 the window path; check the
        // boundary against schoolbook on both sides.
        for bits in [63usize, 64, 65, 68] {
            let mut e = Ubig::zero();
            e.set_bit(bits - 1);
            e.set_bit(bits / 2);
            e.set_bit(0);
            assert_eq!(
                ctx.modpow(&a, &e).unwrap(),
                a.modpow_schoolbook(&e, &m).unwrap(),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn fermat_on_a_large_prime() {
        // 2^127 - 1 is prime (Mersenne); a^(p-1) ≡ 1 (mod p).
        let p = Ubig::one().shl(127).sub(&Ubig::one());
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let e = p.sub(&Ubig::one());
        for a in [2u64, 3, 0xdead_beef] {
            assert_eq!(ctx.modpow(&Ubig::from_u64(a), &e).unwrap(), Ubig::one());
        }
    }

    #[test]
    fn sqrmod_matches_mulmod_self_product() {
        // The determinism contract of the squaring specialization:
        // mont_sqr(x) ≡ mont_mul(x, x) for every input, at every width.
        let mut rng = Drbg::new(0x5351_5541_5245);
        for limbs in 1..=9 {
            for _ in 0..8 {
                let m = random_odd(&mut rng, limbs);
                let x = random_ubig(&mut rng, limbs + 1);
                let ctx = MontgomeryCtx::new(&m).unwrap();
                assert_eq!(
                    ctx.sqrmod(&x).unwrap(),
                    ctx.mulmod(&x, &x).unwrap(),
                    "limbs={limbs} m={m:?} x={x:?}"
                );
                assert_eq!(ctx.sqrmod(&x).unwrap(), x.mulmod(&x, &m).unwrap());
            }
        }
    }

    #[test]
    fn sqrmod_edge_values() {
        let m = Ubig::from_u64(1_000_003);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for v in [0u64, 1, 2, 1_000_002] {
            let x = Ubig::from_u64(v);
            assert_eq!(ctx.sqrmod(&x).unwrap(), Ubig::from_u64(v * v % 1_000_003), "v={v}");
        }
    }

    #[test]
    fn pow2mod_matches_general_ladder() {
        // The doubling ladder must be indistinguishable from modpow with
        // base 2, across widths and exponent lengths (short exponents
        // exercise the binary modpow path, long ones the window path).
        let mut rng = Drbg::new(0x504f_5732);
        let two = Ubig::from_u64(2);
        for limbs in 1..=9 {
            for case in 0..6 {
                let m = random_odd(&mut rng, limbs);
                let ctx = MontgomeryCtx::new(&m).unwrap();
                let e = if case % 2 == 0 {
                    Ubig::from_u64(rng.next_u64())
                } else {
                    random_ubig(&mut rng, limbs)
                };
                assert_eq!(
                    ctx.pow2mod(&e).unwrap(),
                    ctx.modpow(&two, &e).unwrap(),
                    "limbs={limbs} e={e:?} m={m:?}"
                );
            }
        }
    }

    #[test]
    fn pow2mod_edge_cases() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(1_000_003)).unwrap();
        assert_eq!(ctx.pow2mod(&Ubig::zero()).unwrap(), Ubig::one());
        assert_eq!(ctx.pow2mod(&Ubig::one()).unwrap(), Ubig::from_u64(2));
        assert_eq!(ctx.pow2mod(&Ubig::from_u64(20)).unwrap(), Ubig::from_u64(48_573)); // 2^20 mod 1000003
        let one = MontgomeryCtx::new(&Ubig::one()).unwrap();
        assert_eq!(one.pow2mod(&Ubig::from_u64(5)).unwrap(), Ubig::zero());
        // Modulus 3: doubling wraps on every step (2 ≡ −1).
        let three = MontgomeryCtx::new(&Ubig::from_u64(3)).unwrap();
        assert_eq!(three.pow2mod(&Ubig::from_u64(5)).unwrap(), Ubig::from_u64(2));
        assert_eq!(three.pow2mod(&Ubig::from_u64(6)).unwrap(), Ubig::one());
    }

    #[test]
    fn base_larger_than_modulus_reduced() {
        let mut rng = Drbg::new(0x42415345);
        let m = random_odd(&mut rng, 2);
        let a = random_ubig(&mut rng, 5);
        let e = Ubig::from_u64(65537);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.modpow(&a, &e).unwrap(), a.modpow_schoolbook(&e, &m).unwrap());
    }
}
