//! Montgomery-form modular arithmetic — the workspace's hot path.
//!
//! Every RSA operation in the simulator (keygen trial exponentiations,
//! Miller–Rabin witnesses, certificate signing, chain verification)
//! bottoms out in `a^e mod n`. The schoolbook path in [`crate::bigint`]
//! pays a full Knuth Algorithm-D division per square-and-multiply step —
//! ~3000 divisions per 1024-bit signature. This module removes every one
//! of them:
//!
//! * [`MontgomeryCtx`] precomputes, once per modulus, the Montgomery
//!   constants `n′ = -n⁻¹ mod 2⁶⁴` and `R² mod n` (with `R = 2^(64·k)`
//!   for a `k`-limb modulus);
//! * multiplication uses CIOS (Coarsely Integrated Operand Scanning,
//!   Koç–Acar–Kaliski 1996) over the existing little-endian `u64` limb
//!   representation — one fused multiply/reduce pass, no division;
//! * exponentiation is fixed 4-bit-window Montgomery ladder for long
//!   exponents, with a short-exponent binary path (no window table) that
//!   makes `e = 65537` verification cheap;
//! * all scratch buffers are allocated once per [`MontgomeryCtx::modpow`]
//!   call and reused across every window step, so the inner loop performs
//!   zero allocations.
//!
//! Montgomery reduction requires an odd modulus; [`crate::Ubig::modpow`]
//! transparently falls back to the schoolbook path for even moduli.

use crate::bigint::Ubig;
use crate::CryptoError;

/// Exponent bit-length at or below which plain binary square-and-multiply
/// beats building the 4-bit window table (the table costs 14 multiplies;
/// binary saves ~bits/4 of them). 65537 (17 bits) lands well below this.
const WINDOW_THRESHOLD_BITS: usize = 64;

/// Precomputed per-modulus state for Montgomery arithmetic.
///
/// Build once per modulus with [`MontgomeryCtx::new`] (the only step that
/// still performs a division, for `R² mod n`), then run any number of
/// division-free [`modpow`](MontgomeryCtx::modpow) /
/// [`mulmod`](MontgomeryCtx::mulmod) calls against it. RSA keys cache one
/// context per prime factor (see `rsa::RsaCrt`), so signing performs no
/// divisions at all.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// Modulus limbs, little-endian, length `k` (top limb non-zero).
    n: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0_inv: u64,
    /// `R² mod n`, used to convert operands into Montgomery form.
    r2: Vec<u64>,
    /// `R mod n` — the Montgomery representation of 1.
    one: Vec<u64>,
}

impl MontgomeryCtx {
    /// Precompute Montgomery constants for an odd modulus `n > 1`.
    ///
    /// Returns [`CryptoError::EvenModulus`] when `n` is even (Montgomery
    /// reduction needs `gcd(n, 2⁶⁴) = 1`) and
    /// [`CryptoError::DivisionByZero`] when `n` is zero.
    pub fn new(modulus: &Ubig) -> Result<MontgomeryCtx, CryptoError> {
        if modulus.is_zero() {
            return Err(CryptoError::DivisionByZero);
        }
        if !modulus.is_odd() {
            return Err(CryptoError::EvenModulus);
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();
        // Hensel-lift the inverse of n[0] mod 2⁶⁴: five Newton steps,
        // each doubling the number of correct low bits from the seed's 3
        // (x·x ≡ 1 mod 8 for odd x), giving 3·2⁵ = 96 ≥ 64.
        let mut inv: u64 = n[0]; // correct mod 2³ for odd n[0]
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R mod n and R² mod n via the (one-time) schoolbook machinery.
        let r_mod_n = Ubig::one().shl(64 * k).rem(modulus)?;
        let r2_big = r_mod_n.mulmod(&r_mod_n, modulus)?;
        Ok(MontgomeryCtx { one: fixed_limbs(&r_mod_n, k), r2: fixed_limbs(&r2_big, k), n, n0_inv })
    }

    /// Number of limbs `k` in the modulus.
    pub fn limb_count(&self) -> usize {
        self.n.len()
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> Ubig {
        Ubig::from_limbs(self.n.clone())
    }

    /// CIOS Montgomery multiplication: `out ← a·b·R⁻¹ mod n`.
    ///
    /// Fully fused form of Koç–Acar–Kaliski's Coarsely Integrated Operand
    /// Scanning: for each limb of `a`, one inner pass both accumulates
    /// `aᵢ·b` and folds in the `m·n` reduction term, writing results one
    /// limb down — so the divide-by-2⁶⁴ shift costs nothing and `t` is
    /// touched exactly once per pass. `a`, `b` and `out` are `k`-limb
    /// residues `< n`; `t` is a `k+2`-limb scratch buffer reused across
    /// calls. `out` must not alias `t`; aliasing `a`/`b` with `out` is
    /// fine (the product accumulates in `t` and is copied out at the end).
    fn mont_mul(&self, a: &[u64], b: &[u64], t: &mut [u64], out: &mut [u64]) {
        let k = self.n.len();
        debug_assert!(a.len() == k && b.len() == k && out.len() == k && t.len() > k);
        let n = &self.n[..k];
        let b = &b[..k];
        let t = &mut t[..k + 1];
        t.fill(0);
        for &ai in a {
            // Limb 0: accumulate aᵢ·b₀, derive m = t₀·n′ mod 2⁶⁴, and
            // cancel the low limb with m·n₀ (the sum's low 64 bits are 0
            // by construction of n′).
            let sum = t[0] as u128 + ai as u128 * b[0] as u128;
            let mut carry_a = sum >> 64;
            let m = (sum as u64).wrapping_mul(self.n0_inv);
            let red = (sum as u64) as u128 + m as u128 * n[0] as u128;
            debug_assert_eq!(red as u64, 0);
            let mut carry_m = red >> 64;
            // Limbs 1..k: one fused pass, storing shifted one limb down.
            for j in 1..k {
                let sum = t[j] as u128 + ai as u128 * b[j] as u128 + carry_a;
                carry_a = sum >> 64;
                let red = (sum as u64) as u128 + m as u128 * n[j] as u128 + carry_m;
                carry_m = red >> 64;
                t[j - 1] = red as u64;
            }
            // Top limb: t[k] ≤ 1 throughout (t stays < 2n).
            let top = t[k] as u128 + carry_a + carry_m;
            t[k - 1] = top as u64;
            t[k] = (top >> 64) as u64;
        }
        // t < 2n here; one conditional subtraction normalizes to [0, n).
        let needs_sub = t[k] != 0 || cmp_limbs(&t[..k], n) != core::cmp::Ordering::Less;
        if needs_sub {
            let mut borrow = 0u64;
            for j in 0..k {
                let (d1, b1) = t[j].overflowing_sub(n[j]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                out[j] = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        } else {
            out.copy_from_slice(&t[..k]);
        }
    }

    /// `(a · b) mod n` through Montgomery form (mainly for tests; modpow
    /// batches conversions).
    pub fn mulmod(&self, a: &Ubig, b: &Ubig) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        let modulus = self.modulus();
        let am = fixed_limbs(&a.rem(&modulus)?, k);
        let bm = fixed_limbs(&b.rem(&modulus)?, k);
        let mut t = vec![0u64; k + 2];
        let mut x = vec![0u64; k];
        let mut y = vec![0u64; k];
        self.mont_mul(&am, &self.r2, &mut t, &mut x); // a·R
        self.mont_mul(&x, &bm, &mut t, &mut y); // a·b (b unconverted cancels the R)
        Ok(Ubig::from_limbs(y))
    }

    /// `base^exp mod n`, division-free.
    ///
    /// Long exponents use a fixed 4-bit window (16-entry table); exponents
    /// of at most [`WINDOW_THRESHOLD_BITS`] bits use plain left-to-right
    /// binary, which is cheaper than amortizing the table — that is the
    /// fast path RSA verification with `e = 65537` takes.
    pub fn modpow(&self, base: &Ubig, exp: &Ubig) -> Result<Ubig, CryptoError> {
        let k = self.n.len();
        let modulus = self.modulus();
        if modulus.is_one() {
            return Ok(Ubig::zero());
        }
        if exp.is_zero() {
            return Ok(Ubig::one());
        }

        // Scratch buffers, allocated once and reused for every step.
        let mut t = vec![0u64; k + 2];
        let mut acc = vec![0u64; k];
        let mut tmp = vec![0u64; k];

        let base_m = {
            let reduced = fixed_limbs(&base.rem(&modulus)?, k);
            self.mont_mul(&reduced, &self.r2, &mut t, &mut tmp);
            tmp.clone()
        };

        let bits = exp.bit_len();
        if bits <= WINDOW_THRESHOLD_BITS {
            // Short-exponent path: binary ladder, no table.
            acc.copy_from_slice(&base_m);
            for i in (0..bits - 1).rev() {
                self.mont_mul(&acc, &acc, &mut t, &mut tmp);
                if exp.bit(i) {
                    self.mont_mul(&tmp, &base_m, &mut t, &mut acc);
                } else {
                    acc.copy_from_slice(&tmp);
                }
            }
        } else {
            // Fixed 4-bit windows, most-significant first.
            let mut table = vec![0u64; 16 * k];
            table[..k].copy_from_slice(&self.one);
            table[k..2 * k].copy_from_slice(&base_m);
            for w in 2..16 {
                let (lo, hi) = table.split_at_mut(w * k);
                self.mont_mul(&lo[(w - 1) * k..], &base_m, &mut t, &mut hi[..k]);
            }
            let windows = bits.div_ceil(4);
            let top = nibble(exp, windows - 1);
            acc.copy_from_slice(&table[top as usize * k..(top as usize + 1) * k]);
            for w in (0..windows - 1).rev() {
                for _ in 0..4 {
                    self.mont_mul(&acc, &acc, &mut t, &mut tmp);
                    core::mem::swap(&mut acc, &mut tmp);
                }
                let nib = nibble(exp, w) as usize;
                if nib != 0 {
                    self.mont_mul(&acc, &table[nib * k..(nib + 1) * k], &mut t, &mut tmp);
                    core::mem::swap(&mut acc, &mut tmp);
                }
            }
        }

        // Leave Montgomery form: multiply by 1 (the plain integer).
        let mut one_plain = vec![0u64; k];
        one_plain[0] = 1;
        self.mont_mul(&acc, &one_plain, &mut t, &mut tmp);
        Ok(Ubig::from_limbs(tmp))
    }
}

/// The `i`-th 4-bit window of `exp`, LSB window 0.
fn nibble(exp: &Ubig, i: usize) -> u8 {
    let mut v = 0u8;
    for b in 0..4 {
        if exp.bit(i * 4 + b) {
            v |= 1 << b;
        }
    }
    v
}

/// Limbs of `v` zero-extended to exactly `k` limbs (`v` must fit).
fn fixed_limbs(v: &Ubig, k: usize) -> Vec<u64> {
    let src = v.limbs();
    debug_assert!(src.len() <= k);
    let mut out = vec![0u64; k];
    out[..src.len()].copy_from_slice(src);
    out
}

fn cmp_limbs(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    core::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::{Drbg, RngCore64};

    fn random_ubig(rng: &mut Drbg, limbs: usize) -> Ubig {
        let mut bytes = vec![0u8; limbs * 8];
        rng.fill_bytes(&mut bytes);
        Ubig::from_bytes_be(&bytes)
    }

    fn random_odd(rng: &mut Drbg, limbs: usize) -> Ubig {
        let mut m = random_ubig(rng, limbs);
        m.set_bit(0);
        m.set_bit(limbs * 64 - 1); // full limb count
        m
    }

    #[test]
    fn rejects_even_and_zero_modulus() {
        assert_eq!(MontgomeryCtx::new(&Ubig::from_u64(10)).unwrap_err(), CryptoError::EvenModulus);
        assert_eq!(MontgomeryCtx::new(&Ubig::zero()).unwrap_err(), CryptoError::DivisionByZero);
    }

    #[test]
    fn known_small_values() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(497)).unwrap();
        assert_eq!(
            ctx.modpow(&Ubig::from_u64(4), &Ubig::from_u64(13)).unwrap(),
            Ubig::from_u64(445)
        );
        assert_eq!(
            ctx.mulmod(&Ubig::from_u64(123), &Ubig::from_u64(456)).unwrap(),
            Ubig::from_u64(123 * 456 % 497)
        );
    }

    #[test]
    fn modulus_one_yields_zero() {
        let ctx = MontgomeryCtx::new(&Ubig::one()).unwrap();
        assert_eq!(ctx.modpow(&Ubig::from_u64(5), &Ubig::from_u64(3)).unwrap(), Ubig::zero());
    }

    #[test]
    fn zero_base_and_zero_exponent() {
        let ctx = MontgomeryCtx::new(&Ubig::from_u64(1_000_003)).unwrap();
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::from_u64(100)).unwrap(), Ubig::zero());
        assert_eq!(ctx.modpow(&Ubig::from_u64(7), &Ubig::zero()).unwrap(), Ubig::one());
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::zero()).unwrap(), Ubig::one());
    }

    #[test]
    fn matches_schoolbook_across_limb_sizes() {
        let mut rng = Drbg::new(0x4d4f4e54);
        for limbs in 1..=9 {
            for _ in 0..8 {
                let m = random_odd(&mut rng, limbs);
                let a = random_ubig(&mut rng, limbs + 1);
                let e = random_ubig(&mut rng, 2);
                let ctx = MontgomeryCtx::new(&m).unwrap();
                assert_eq!(
                    ctx.modpow(&a, &e).unwrap(),
                    a.modpow_schoolbook(&e, &m).unwrap(),
                    "limbs={limbs} m={m:?} a={a:?} e={e:?}"
                );
            }
        }
    }

    #[test]
    fn short_and_long_exponent_paths_agree() {
        let mut rng = Drbg::new(0x57494e44);
        let m = random_odd(&mut rng, 4);
        let a = random_ubig(&mut rng, 4);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        // 64 bits takes the binary path, 65 the window path; check the
        // boundary against schoolbook on both sides.
        for bits in [63usize, 64, 65, 68] {
            let mut e = Ubig::zero();
            e.set_bit(bits - 1);
            e.set_bit(bits / 2);
            e.set_bit(0);
            assert_eq!(
                ctx.modpow(&a, &e).unwrap(),
                a.modpow_schoolbook(&e, &m).unwrap(),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn fermat_on_a_large_prime() {
        // 2^127 - 1 is prime (Mersenne); a^(p-1) ≡ 1 (mod p).
        let p = Ubig::one().shl(127).sub(&Ubig::one());
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let e = p.sub(&Ubig::one());
        for a in [2u64, 3, 0xdead_beef] {
            assert_eq!(ctx.modpow(&Ubig::from_u64(a), &e).unwrap(), Ubig::one());
        }
    }

    #[test]
    fn base_larger_than_modulus_reduced() {
        let mut rng = Drbg::new(0x42415345);
        let m = random_odd(&mut rng, 2);
        let a = random_ubig(&mut rng, 5);
        let e = Ubig::from_u64(65537);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.modpow(&a, &e).unwrap(), a.modpow_schoolbook(&e, &m).unwrap());
    }
}
