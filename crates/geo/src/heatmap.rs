//! Figure-7 heat-map binning and rendering.
//!
//! The paper's Figure 7 is a world choropleth of per-country TLS-proxy
//! prevalence ("Highest = 12% proxy rate, lowest = 0%"). Without a map
//! projection to print, the faithful reproduction of the *data artifact*
//! is (a) the full (country, rate) series and (b) a binned legend view;
//! [`render_heatmap`] emits both as text, and the bench harness also
//! writes the series as CSV for external plotting.

use crate::countries::{self, CountryCode};

/// One prevalence bin of the choropleth legend.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatBin {
    /// Inclusive lower bound of the bin (fraction, e.g. 0.004 = 0.4%).
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
    /// Countries falling in the bin.
    pub members: Vec<CountryCode>,
}

/// Bin boundaries chosen to span the paper's observed range (0–12%).
pub const BIN_EDGES: [f64; 7] = [0.0, 0.0005, 0.001, 0.002, 0.004, 0.008, 0.12];

/// Bin a (country → rate) series into the legend bins.
pub fn bin_rates(rates: &[(CountryCode, f64)]) -> Vec<HeatBin> {
    let mut bins: Vec<HeatBin> =
        BIN_EDGES.windows(2).map(|w| HeatBin { lo: w[0], hi: w[1], members: Vec::new() }).collect();
    for &(code, rate) in rates {
        let idx = bins.iter().position(|b| rate >= b.lo && rate < b.hi).unwrap_or(bins.len() - 1);
        bins[idx].members.push(code);
    }
    bins
}

/// Render the heat map as text: a shaded per-country strip plus the
/// binned legend (▁▂▃▄▅▆█ by prevalence).
pub fn render_heatmap(rates: &[(CountryCode, f64)]) -> String {
    const SHADES: [char; 6] = ['▁', '▂', '▃', '▅', '▆', '█'];
    let mut sorted: Vec<(CountryCode, f64)> = rates.to_vec();
    // Tie-break equal rates by country code: the input order comes from
    // hash-map iteration, so without it the rendering (exp_all output)
    // differs run to run among the long 0% tail.
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("rates are finite").then(a.0.cmp(&b.0)));

    let mut out = String::new();
    out.push_str("TLS proxy prevalence by country (Figure 7)\n");
    out.push_str("highest → lowest; shade = legend bin\n\n");
    for (code, rate) in &sorted {
        let bin = BIN_EDGES
            .windows(2)
            .position(|w| *rate >= w[0] && *rate < w[1])
            .unwrap_or(SHADES.len() - 1)
            .min(SHADES.len() - 1);
        let info = countries::info(*code);
        out.push_str(&format!("{} {:<14} {:>7.3}%\n", SHADES[bin], info.name, rate * 100.0));
    }
    out.push('\n');
    for (i, w) in BIN_EDGES.windows(2).enumerate() {
        out.push_str(&format!(
            "{} [{:.2}%, {:.2}%)\n",
            SHADES[i.min(SHADES.len() - 1)],
            w[0] * 100.0,
            w[1] * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countries::by_code;

    #[test]
    fn binning_respects_edges() {
        let us = by_code("US").unwrap();
        let cn = by_code("CN").unwrap();
        let bins = bin_rates(&[(us, 0.0086), (cn, 0.0002)]);
        // US (0.86%) lands in the top bin, CN (0.02%) in the lowest.
        assert!(bins.last().unwrap().members.contains(&us));
        assert!(bins[0].members.contains(&cn));
    }

    #[test]
    fn every_rate_lands_in_exactly_one_bin() {
        let rates: Vec<(CountryCode, f64)> =
            (0..20).map(|i| (CountryCode(i), i as f64 * 0.0005)).collect();
        let bins = bin_rates(&rates);
        let total: usize = bins.iter().map(|b| b.members.len()).sum();
        assert_eq!(total, rates.len());
    }

    #[test]
    fn render_contains_all_countries() {
        let us = by_code("US").unwrap();
        let cn = by_code("CN").unwrap();
        let text = render_heatmap(&[(us, 0.0086), (cn, 0.0002)]);
        assert!(text.contains("US"));
        assert!(text.contains("China"));
        assert!(text.contains("0.860%"));
        assert!(text.contains("0.020%"));
    }

    #[test]
    fn render_sorted_descending() {
        let us = by_code("US").unwrap();
        let cn = by_code("CN").unwrap();
        let text = render_heatmap(&[(cn, 0.0002), (us, 0.0086)]);
        let us_pos = text.find("US").unwrap();
        let cn_pos = text.find("China").unwrap();
        assert!(us_pos < cn_pos, "US (higher rate) should come first");
    }

    #[test]
    fn out_of_range_rate_clamps_to_top_bin() {
        let us = by_code("US").unwrap();
        let bins = bin_rates(&[(us, 0.5)]); // 50% — above all edges
        assert!(bins.last().unwrap().members.contains(&us));
    }
}
