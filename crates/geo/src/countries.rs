//! Country registry.
//!
//! Every country named in the paper's Tables 3 and 7 is present with its
//! ISO-3166-ish code; the long tail ("Other (215)" / "Other (209)") is
//! modelled by synthetic `T##` territory codes so the simulated studies
//! can, like the real ones, observe proxied users in 140+ countries.

/// A compact country identifier (interned index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode(pub u16);

/// A registry entry.
#[derive(Debug, Clone)]
pub struct Country {
    /// Two-letter code (or `T##` for synthetic tail territories).
    pub code: &'static str,
    /// Display name as the paper prints it.
    pub name: &'static str,
}

/// Named countries from the paper (Tables 3 and 7, targeting §4.2/§6.2).
pub const NAMED: &[Country] = &[
    Country { code: "US", name: "US" },
    Country { code: "BR", name: "Brazil" },
    Country { code: "FR", name: "France" },
    Country { code: "GB", name: "UK" },
    Country { code: "RO", name: "Romania" },
    Country { code: "DE", name: "Germany" },
    Country { code: "CA", name: "Canada" },
    Country { code: "TR", name: "Turkey" },
    Country { code: "IN", name: "India" },
    Country { code: "ES", name: "Spain" },
    Country { code: "RU", name: "Russia" },
    Country { code: "IT", name: "Italy" },
    Country { code: "KR", name: "S.Korea" },
    Country { code: "PT", name: "Portugal" },
    Country { code: "PL", name: "Poland" },
    Country { code: "UA", name: "Ukraine" },
    Country { code: "BE", name: "Belgium" },
    Country { code: "JP", name: "Japan" },
    Country { code: "NL", name: "Netherlands" },
    Country { code: "TW", name: "Taiwan" },
    Country { code: "CN", name: "China" },
    Country { code: "EG", name: "Egypt" },
    Country { code: "PK", name: "Pakistan" },
    Country { code: "ID", name: "Indonesia" },
    Country { code: "GR", name: "Greece" },
    Country { code: "CZ", name: "Czech Rep." },
    Country { code: "DK", name: "Denmark" },
    Country { code: "IE", name: "Ireland" },
];

/// Number of synthetic tail territories (keeps total territory count at
/// 228, matching "228 countries and territories" under Figure 7).
pub const TAIL_COUNT: u16 = 200;

/// Total number of registered territories.
pub fn territory_count() -> u16 {
    NAMED.len() as u16 + TAIL_COUNT
}

/// Look up registry info for a code index.
pub fn info(code: CountryCode) -> Country {
    let idx = code.0 as usize;
    if idx < NAMED.len() {
        NAMED[idx].clone()
    } else {
        let tail_index = idx - NAMED.len();
        assert!((tail_index as u16) < TAIL_COUNT, "country code {idx} out of registry");
        // Synthetic territories get stable generated codes/names. The
        // leaked &'static str is bounded by TAIL_COUNT distinct values.
        let code: &'static str = Box::leak(format!("T{tail_index:02}").into_boxed_str());
        let name: &'static str = Box::leak(format!("Territory {tail_index}").into_boxed_str());
        Country { code, name }
    }
}

/// Find a named country's code index by its two-letter code.
pub fn by_code(code: &str) -> Option<CountryCode> {
    NAMED.iter().position(|c| c.code == code).map(|i| CountryCode(i as u16))
}

/// Iterate all codes (named + tail).
pub fn all_codes() -> impl Iterator<Item = CountryCode> {
    (0..territory_count()).map(CountryCode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_countries_resolvable() {
        for c in ["US", "CN", "UA", "RU", "EG", "PK", "BR", "GB"] {
            let code = by_code(c).unwrap_or_else(|| panic!("{c} missing"));
            assert_eq!(info(code).code, c);
        }
        assert!(by_code("ZZ").is_none());
    }

    #[test]
    fn registry_size_matches_paper() {
        // Figure 7 caption: 228 countries and territories.
        assert_eq!(territory_count(), 228);
        assert_eq!(all_codes().count(), 228);
    }

    #[test]
    fn tail_codes_distinct() {
        let a = info(CountryCode(NAMED.len() as u16));
        let b = info(CountryCode(NAMED.len() as u16 + 1));
        assert_ne!(a.code, b.code);
        assert!(a.code.starts_with('T'));
    }

    #[test]
    fn no_duplicate_named_codes() {
        let mut codes: Vec<&str> = NAMED.iter().map(|c| c.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), NAMED.len());
    }

    #[test]
    #[should_panic(expected = "out of registry")]
    fn out_of_range_panics() {
        info(CountryCode(territory_count()));
    }
}
