//! The GeoIP database: block allocation and reverse lookup.

use tlsfoe_netsim::addr::{Block, Ipv4};

use crate::countries::{self, CountryCode};

/// Deterministic IP-block allocator + reverse lookup database.
///
/// Each registered territory receives one contiguous block sized by the
/// caller (clients are then numbered within their country's block). The
/// reverse lookup is a binary search over block bases — the same
/// country-granularity answer MaxMind GeoLite gave the paper's reporting
/// server.
#[derive(Debug, Clone)]
pub struct GeoDb {
    // (base_u32, size, country), sorted by base.
    blocks: Vec<(u32, u32, CountryCode)>,
}

impl GeoDb {
    /// Allocate `block_size` addresses per territory, starting at
    /// 11.0.0.0 (clear of the simulator's well-known server range
    /// 203.0.113.0/24 and the test range 198.51.100.0/24).
    pub fn allocate(block_size: u32) -> GeoDb {
        assert!(block_size > 0, "block size must be positive");
        let mut blocks = Vec::new();
        let mut base = Ipv4([11, 0, 0, 0]).as_u32();
        for code in countries::all_codes() {
            blocks.push((base, block_size, code));
            base = base.checked_add(block_size).expect("address space exhausted");
        }
        GeoDb { blocks }
    }

    /// The block allocated to `country`.
    pub fn block(&self, country: CountryCode) -> Block {
        let (base, size, _) = self.blocks[country.0 as usize];
        Block::new(Ipv4::from_u32(base), size)
    }

    /// The `i`-th client address of `country`.
    pub fn client_addr(&self, country: CountryCode, i: u32) -> Ipv4 {
        self.block(country).addr(i)
    }

    /// Geolocate an address to its territory.
    pub fn lookup(&self, ip: Ipv4) -> Option<CountryCode> {
        let v = ip.as_u32();
        let idx = self.blocks.partition_point(|&(base, _, _)| base <= v);
        if idx == 0 {
            return None;
        }
        let (base, size, code) = self.blocks[idx - 1];
        if v - base < size {
            Some(code)
        } else {
            None
        }
    }

    /// Number of territories in the database.
    pub fn territories(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countries::by_code;

    #[test]
    fn lookup_roundtrip_all_countries() {
        let db = GeoDb::allocate(1000);
        for code in countries::all_codes() {
            for i in [0u32, 1, 999] {
                let ip = db.client_addr(code, i);
                assert_eq!(db.lookup(ip), Some(code), "ip {ip}");
            }
        }
    }

    #[test]
    fn lookup_outside_blocks_is_none() {
        let db = GeoDb::allocate(100);
        assert_eq!(db.lookup(Ipv4([10, 255, 255, 255])), None);
        assert_eq!(db.lookup(Ipv4([203, 0, 113, 1])), None);
        assert_eq!(db.lookup(Ipv4([0, 0, 0, 1])), None);
    }

    #[test]
    fn blocks_are_disjoint_and_ordered() {
        let db = GeoDb::allocate(500);
        for w in db.blocks.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0);
        }
    }

    #[test]
    fn named_country_blocks_distinct() {
        let db = GeoDb::allocate(10);
        let us = db.block(by_code("US").unwrap());
        let cn = db.block(by_code("CN").unwrap());
        assert!(!us.contains(cn.addr(0)));
        assert!(!cn.contains(us.addr(0)));
    }

    #[test]
    fn territory_count_preserved() {
        let db = GeoDb::allocate(10);
        assert_eq!(db.territories(), countries::territory_count() as usize);
    }
}
