//! # tlsfoe-geo
//!
//! The synthetic stand-in for MaxMind GeoLite (§4 of the paper): a
//! country registry, deterministic per-country IPv4 block allocation, an
//! address→country lookup database, and the binning used to render the
//! Figure-7 prevalence heat map.
//!
//! The paper records each reporting client's IP address and geolocates it
//! to country granularity; our report server does exactly the same via
//! [`GeoDb::lookup`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod countries;
pub mod db;
pub mod heatmap;

pub use countries::{Country, CountryCode};
pub use db::GeoDb;
pub use heatmap::{render_heatmap, HeatBin};
