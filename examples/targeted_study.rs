//! Country-targeted measurement (§6.2): run study 2's six mini-campaigns
//! at a laptop scale and reproduce the per-country findings — China's
//! exceptionally low proxy rate, Western countries' high rates, and the
//! host-type invariance of Table 8.
//!
//! Run: `cargo run --release --example targeted_study`

use tlsfoe::core::study::{run_study, StudyConfig, StudyError};
use tlsfoe::core::{analysis, tables};
use tlsfoe::geo::countries::by_code;

fn main() -> Result<(), StudyError> {
    let cfg = StudyConfig::study2(60, 20141008);
    eprintln!("running scaled study 2 with country targeting…");
    let outcome = run_study(&cfg)?;

    print!("{}", tables::table2(&outcome));
    println!();
    print!(
        "{}",
        tables::table_by_country(&outcome.db, "Connections tested by country (Table 7 shape)")
    );
    println!();
    print!("{}", tables::table8(&outcome.db));

    // The §6.2 comparisons, computed from the measured data.
    let (rows, _, total) = analysis::by_country(&outcome.db, usize::MAX);
    let rate_of = |code: &str| {
        let c = by_code(code).expect("country registered");
        rows.iter().find(|r| r.country == Some(c)).map(|r| r.percent())
    };
    println!("\n§6.2 findings at this scale:");
    if let (Some(cn), Some(us)) = (rate_of("CN"), rate_of("US")) {
        println!(
            "  China {:.3}% vs US {:.3}% — the paper's China anomaly ({}x lower)",
            cn * 100.0,
            us * 100.0,
            if cn > 0.0 { (us / cn).round() } else { f64::INFINITY }
        );
    }
    println!("  overall proxied rate: {:.2}% (paper: 0.41%)", total.percent() * 100.0);
    println!(
        "  countries with proxied users: {} (paper: 147 at full scale)",
        analysis::proxied_country_count(&outcome.db)
    );
    Ok(())
}
