//! Quickstart: detect a TLS proxy in five steps.
//!
//! Builds a tiny world — one HTTPS server with a legitimate certificate,
//! one client running an SSL-scanning firewall — runs the paper's
//! measurement probe from the client, and shows the certificate
//! mismatch that reveals the proxy.
//!
//! Run: `cargo run --example quickstart`

use std::sync::Arc;

use tlsfoe::crypto::drbg::Drbg;
use tlsfoe::crypto::RsaKeyPair;
use tlsfoe::netsim::{Ipv4, Network, NetworkConfig};
use tlsfoe::population::model::{PopulationModel, StudyEra};
use tlsfoe::population::products::ProductId;
use tlsfoe::tls::probe::{ProbeOutcome, ProbeState};
use tlsfoe::tls::server::{ServerConfig, TlsCertServer};
use tlsfoe::tls::ProbeClient;
use tlsfoe::x509::{Certificate, CertificateBuilder, NameBuilder, RootStore};

fn main() {
    // 1. A legitimate web PKI: CA root + a server certificate.
    let mut rng = Drbg::new(7);
    let ca_key = RsaKeyPair::generate(1024, &mut rng).expect("CA keygen");
    let leaf_key = RsaKeyPair::generate(1024, &mut rng).expect("leaf keygen");
    let ca_name = NameBuilder::new().organization("Demo Root CA").build();
    let ca_cert = CertificateBuilder::new()
        .subject(ca_name.clone())
        .ca(None)
        .self_sign(&ca_key)
        .expect("CA cert");
    let server_cert = CertificateBuilder::new()
        .issuer(ca_name)
        .subject(NameBuilder::new().common_name("bank.example").build())
        .san_dns(&["bank.example"])
        .sign(&leaf_key.public, &ca_key)
        .expect("server cert");
    let mut roots = RootStore::new();
    roots.add_factory_root(ca_cert.clone());

    // 2. A network with that server listening on 443.
    let mut net = Network::new(NetworkConfig::default(), 1);
    let server_ip = Ipv4([203, 0, 113, 1]);
    let client_ip = Ipv4([11, 0, 0, 1]);
    let config = ServerConfig::new(vec![server_cert.clone(), ca_cert]);
    net.listen(server_ip, 443, Box::new(move |_| Box::new(TlsCertServer::new(config.clone()))));

    // 3. Install an interception product on the client's path — here
    //    Bitdefender's SSL-scanning feature from the paper's catalog.
    let model = PopulationModel::new(StudyEra::Study1, Arc::new(roots));
    let bitdefender = ProductId(
        model
            .specs()
            .iter()
            .position(|s| s.display_name() == "Bitdefender")
            .expect("catalog product") as u16,
    );
    net.install_interceptor(client_ip, Box::new(model.make_proxy(bitdefender)));

    // 4. Run the paper's probe: ClientHello → capture Certificate → abort.
    let outcome = ProbeOutcome::new();
    net.dial_from(
        client_ip,
        server_ip,
        443,
        Box::new(ProbeClient::new("bank.example", [42; 32], outcome.clone())),
    )
    .expect("server reachable");
    net.run().expect("probe scenario quiesces");

    // 5. Compare what the client saw with what the server serves.
    let o = outcome.lock();
    assert_eq!(o.state, ProbeState::Done, "probe must complete");
    let captured = Certificate::from_der(&o.chain_der[0]).expect("captured cert parses");
    println!("authoritative certificate: {server_cert}");
    println!("client actually received:  {captured}");
    if captured.to_der() != server_cert.to_der() {
        println!("\n=> MISMATCH: this connection is TLS-proxied!");
        println!("   substitute issuer organization: {:?}", captured.tbs.issuer.organization());
        println!("   substitute key size: {} bits", captured.key_bits());
    } else {
        println!("\n=> certificates match; no proxy on path");
    }
}
