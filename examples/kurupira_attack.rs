//! The Kurupira attack (§5.2): a parental filter that *masks* forged
//! certificates, letting an attacker MitM its users invisibly.
//!
//! Walks through the paper's lab finding step by step:
//! 1. an attacker MitMs the path with a self-signed certificate —
//!    a bare client's browser would warn;
//! 2. behind Kurupira, the filter fetches the forged upstream cert,
//!    does NOT validate it, and re-signs with its own (victim-trusted)
//!    root — the warning disappears;
//! 3. behind Bitdefender, the same attack is blocked outright.
//!
//! Run: `cargo run --release --example kurupira_attack`

use tlsfoe::core::audit::{audit_product, AuditVerdict};
use tlsfoe::core::hosts::HostCatalog;
use tlsfoe::population::model::{PopulationModel, StudyEra};
use tlsfoe::population::products::ProductId;

fn product(model: &PopulationModel, name: &str) -> ProductId {
    ProductId(
        model
            .specs()
            .iter()
            .position(|s| s.display_name() == name)
            .unwrap_or_else(|| panic!("{name} not in catalog")) as u16,
    )
}

fn main() {
    let catalog = HostCatalog::study1();
    let model = PopulationModel::new(StudyEra::Study1, catalog.public_roots.clone());

    println!("scenario: an attacker MitMs victim-bank.example with a self-signed cert\n");

    let bare = audit_product(&model, None);
    println!("bare client:        {:?} — the browser warns, attack visible", bare);
    assert_eq!(bare, AuditVerdict::UntrustedWarning);

    let kurupira = audit_product(&model, Some(product(&model, "Kurupira.NET")));
    println!(
        "behind Kurupira:    {:?} — forged cert replaced by a TRUSTED one; the attack is invisible (!)",
        kurupira
    );
    assert_eq!(kurupira, AuditVerdict::MaskedTrusted);

    let bitdefender = audit_product(&model, Some(product(&model, "Bitdefender")));
    println!("behind Bitdefender: {:?} — connection refused; the user is protected", bitdefender);
    assert_eq!(bitdefender, AuditVerdict::Blocked);

    println!(
        "\n=> the same MitM mechanism yields opposite security outcomes depending on\n   the product's upstream-validation policy — the paper's friend-or-foe point."
    );
}
