//! Mitigation lab (§7 as an executable survey): pit certificate
//! pinning, multi-path notaries and a CT-style log against a live
//! TLS proxy, interactively showing what each defence sees.
//!
//! Run: `cargo run --release --example mitigation_lab`

use std::rc::Rc;

use tlsfoe::core::hosts::HostCatalog;
use tlsfoe::mitigation::ctlog::CtLog;
use tlsfoe::mitigation::notary::{Notary, NotaryVerdict};
use tlsfoe::mitigation::pinning::{PinPolicy, PinStore, PinVerdict};
use tlsfoe::netsim::Ipv4;
use tlsfoe::population::model::{ClientProfile, PopulationModel, StudyEra};
use tlsfoe::population::products::ProductId;

fn main() {
    let catalog = HostCatalog::study2();
    let model = PopulationModel::new(StudyEra::Study2, catalog.public_roots.clone());
    let host = &catalog.hosts[0];
    let genuine = &host.chain[0];

    // A Superfish-infected client (the ad-injecting malware of §6.4).
    let superfish = ProductId(
        model
            .specs()
            .iter()
            .position(|s| s.display_name() == "Superfish, Inc.")
            .expect("catalog product") as u16,
    );
    let factory = model.factory(superfish);
    let substitute = factory.substitute_chain(host.name, host.ip, Some(genuine));
    let victim = ClientProfile {
        country: tlsfoe::geo::countries::by_code("US").expect("US registered"),
        ip: Ipv4([11, 0, 0, 8]),
        product: Some(superfish),
    };
    let victim_roots = Rc::new(model.client_root_store(&victim));

    println!("victim sees:  {}", substitute[0]);
    println!("genuine cert: {genuine}\n");

    // Browser chain validation on the victim machine: the lock appears.
    victim_roots
        .validate(&substitute, host.name, model.now())
        .expect("victim's browser shows the lock — that's the problem");
    println!("victim's browser: VALID (lock icon) — interception invisible\n");

    // 1. Strict pinning.
    let mut strict = PinStore::new(PinPolicy::Strict);
    strict.preload(host.name, genuine);
    let v = strict.check(host.name, &substitute, &victim_roots);
    println!("strict pin (TACK-style):   {v:?}");
    assert_eq!(v, PinVerdict::Violation);

    // 2. Chrome-style pinning — bypassed by the injected root (§7).
    let mut chrome = PinStore::new(PinPolicy::BypassLocalRoots);
    chrome.preload(host.name, genuine);
    let v = chrome.check(host.name, &substitute, &victim_roots);
    println!("chrome pin (local bypass): {v:?}  <- the §7 loophole");
    assert_eq!(v, PinVerdict::BypassedByLocalRoot);

    // 3. Multi-path notary: vantage points see the genuine cert.
    let notary = Notary::new(5, 0.6);
    let observations: Vec<Vec<u8>> = (0..5).map(|_| genuine.to_der().to_vec()).collect();
    let v = notary.verdict(&substitute[0], &observations);
    println!("multi-path notary:         {v:?}");
    assert_eq!(v, NotaryVerdict::ClientPathMitm);

    // 4. CT-style log: the substitute was never logged.
    let mut log = CtLog::new();
    let idx = log.append(genuine);
    let proof = log.prove_inclusion(idx);
    assert!(CtLog::verify_inclusion(genuine, &proof, &log.root()));
    println!(
        "CT log:                    genuine logged+proved; substitute in log? {}",
        log.contains(&substitute[0])
    );
    assert!(!log.contains(&substitute[0]));

    println!("\n=> every defence except Chrome-style pinning catches the proxy;\n   none of them can tell a benevolent firewall from Superfish.");
}
